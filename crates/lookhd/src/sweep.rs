//! Structured design-space sweeps over the LookHD hyperparameters.
//!
//! The paper's evaluation is a family of grid sweeps (Fig. 12: `r × q`;
//! Table II: `D`; Fig. 15: `k`). This module packages that pattern into a
//! reusable API: declare a grid, hand it a dataset, get one record per
//! configuration with compressed and uncompressed accuracy.

use hdc::metrics::accuracy;
use hdc::{Classifier, FitClassifier, HdcError, Result};

use crate::classifier::{LookHdClassifier, LookHdConfig};

/// The grid of configurations to explore. Every combination of the listed
/// values is fitted; other hyperparameters come from `base`.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Base configuration cloned for every grid point.
    pub base: LookHdConfig,
    /// Dimensionalities to try (empty ⇒ keep `base.dim`).
    pub dims: Vec<usize>,
    /// Quantization level counts to try (empty ⇒ keep `base.q`).
    pub qs: Vec<usize>,
    /// Chunk sizes to try (empty ⇒ keep `base.r`).
    pub rs: Vec<usize>,
}

impl SweepGrid {
    /// A grid holding everything at `base` (sweep nothing yet).
    pub fn new(base: LookHdConfig) -> Self {
        Self {
            base,
            dims: Vec::new(),
            qs: Vec::new(),
            rs: Vec::new(),
        }
    }

    /// Sets the dimensionalities to sweep.
    pub fn over_dims(mut self, dims: Vec<usize>) -> Self {
        self.dims = dims;
        self
    }

    /// Sets the quantization level counts to sweep.
    pub fn over_qs(mut self, qs: Vec<usize>) -> Self {
        self.qs = qs;
        self
    }

    /// Sets the chunk sizes to sweep.
    pub fn over_rs(mut self, rs: Vec<usize>) -> Self {
        self.rs = rs;
        self
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.dims.len().max(1) * self.qs.len().max(1) * self.rs.len().max(1)
    }

    /// True when the grid has exactly the base point.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty() && self.qs.is_empty() && self.rs.is_empty()
    }

    /// Materializes every configuration in the grid.
    pub fn configs(&self) -> Vec<LookHdConfig> {
        let dims = if self.dims.is_empty() {
            vec![self.base.dim]
        } else {
            self.dims.clone()
        };
        let qs = if self.qs.is_empty() {
            vec![self.base.q]
        } else {
            self.qs.clone()
        };
        let rs = if self.rs.is_empty() {
            vec![self.base.r]
        } else {
            self.rs.clone()
        };
        let mut out = Vec::with_capacity(dims.len() * qs.len() * rs.len());
        for &dim in &dims {
            for &q in &qs {
                for &r in &rs {
                    out.push(self.base.clone().with_dim(dim).with_q(q).with_r(r));
                }
            }
        }
        out
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// The configuration that was fitted.
    pub config: LookHdConfig,
    /// Test accuracy of the deployed (compressed) path.
    pub accuracy: f64,
    /// Test accuracy of the uncompressed model.
    pub accuracy_uncompressed: f64,
    /// Compressed model bytes.
    pub model_bytes: usize,
    /// Combined vectors the compression produced.
    pub n_vectors: usize,
}

impl SweepRecord {
    /// CSV header matching [`SweepRecord::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "dim,q,r,accuracy,accuracy_uncompressed,model_bytes,n_vectors";

    /// One CSV row for this record.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.4},{:.4},{},{}",
            self.config.dim,
            self.config.q,
            self.config.r,
            self.accuracy,
            self.accuracy_uncompressed,
            self.model_bytes,
            self.n_vectors
        )
    }
}

/// Runs the sweep: fits every configuration on the training split and
/// evaluates on the test split. `on_progress` is invoked after each grid
/// point (e.g. for logging); pass `|_| {}` to ignore.
///
/// # Errors
///
/// Propagates the first training/evaluation error.
pub fn run_sweep<F: FnMut(&SweepRecord)>(
    grid: &SweepGrid,
    train_features: &[Vec<f64>],
    train_labels: &[usize],
    test_features: &[Vec<f64>],
    test_labels: &[usize],
    mut on_progress: F,
) -> Result<Vec<SweepRecord>> {
    if test_features.is_empty() || test_features.len() != test_labels.len() {
        return Err(HdcError::invalid_dataset(
            "test split must be non-empty and consistent",
        ));
    }
    let mut records = Vec::with_capacity(grid.len());
    for config in grid.configs() {
        let clf = LookHdClassifier::fit(&config, train_features, train_labels)?;
        let predictions = clf.predict_batch(test_features)?;
        let acc = accuracy(&predictions, test_labels)?;
        let mut unc = 0usize;
        for (x, &y) in test_features.iter().zip(test_labels) {
            if clf.predict_uncompressed(x)? == y {
                unc += 1;
            }
        }
        let record = SweepRecord {
            accuracy: acc,
            accuracy_uncompressed: unc as f64 / test_features.len() as f64,
            model_bytes: clf.compressed().size_bytes(),
            n_vectors: clf.compressed().n_vectors(),
            config,
        };
        on_progress(&record);
        records.push(record);
    }
    Ok(records)
}

/// Renders records as a CSV document (header + rows).
pub fn to_csv(records: &[SweepRecord]) -> String {
    let mut out = String::from(SweepRecord::CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![if i % 2 == 0 { 0.2 } else { 0.8 }; 10])
            .collect();
        let ys: Vec<usize> = (0..40).map(|i| i % 2).collect();
        (xs, ys)
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let grid = SweepGrid::new(LookHdConfig::new())
            .over_dims(vec![128, 256])
            .over_qs(vec![2, 4])
            .over_rs(vec![3]);
        assert_eq!(grid.len(), 4);
        assert!(!grid.is_empty());
        let configs = grid.configs();
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().any(|c| c.dim == 128 && c.q == 4 && c.r == 3));
    }

    #[test]
    fn empty_axes_fall_back_to_base() {
        let base = LookHdConfig::new().with_dim(99).with_q(2).with_r(4);
        let grid = SweepGrid::new(base.clone());
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 1);
        let configs = grid.configs();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].dim, 99);
    }

    #[test]
    fn sweep_runs_and_reports() {
        let (xs, ys) = toy();
        let grid = SweepGrid::new(LookHdConfig::new().with_dim(128).with_retrain_epochs(0))
            .over_qs(vec![2, 4]);
        let mut seen = 0usize;
        let records = run_sweep(&grid, &xs, &ys, &xs, &ys, |_| seen += 1).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(seen, 2);
        for r in &records {
            assert!(r.accuracy > 0.9, "toy sweep should be easy: {}", r.accuracy);
            assert!(r.model_bytes > 0);
        }
        let csv = to_csv(&records);
        assert!(csv.starts_with(SweepRecord::CSV_HEADER));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn sweep_validates_test_split() {
        let (xs, ys) = toy();
        let grid = SweepGrid::new(LookHdConfig::new().with_dim(64));
        assert!(run_sweep(&grid, &xs, &ys, &[], &[], |_| {}).is_err());
    }
}
