//! Score-LUT inference kernel: fold class scoring into the lookup table.
//!
//! The dense compressed path (§IV, Eq. 5) materializes the query
//! hypervector `H = Σ_i P_i ⊙ LUT_i[addr_i]` (Eq. 3) and then scores each
//! class with a `D`-wide multiply-accumulate. But scoring is *linear* in
//! `H`, so the per-class score decomposes chunk by chunk:
//!
//! ```text
//! score_c(H) = Σ_d P'_c[d] · H[d] · C[d]
//!            = Σ_i (P'_c ⊙ C ⊙ P_i) · LUT_i[addr_i]
//!            = Σ_i S_i[c][addr_i]
//! ```
//!
//! where `C` is the combined vector holding class `c`. Every partial score
//! `S_i[c][addr]` depends only on the trained model, so it is precomputed
//! once at model-finalize time. Prediction is then address extraction
//! (quantize + concatenated-codebook addressing, shared with the encoder)
//! followed by `m` table reads and `m·k` integer adds — no hypervector is
//! materialized on the query path. This applies the paper's
//! arithmetic-to-memory substitution (§III, §V) to the scoring stage.
//!
//! ## Exactness
//!
//! All quantities are integers and `i64` addition is associative, so the
//! gathered total equals the dense integer path *bit for bit* provided
//! nothing overflows. [`ScoreLut::build`] enforces
//! `D · max|C| · n ≤ 2^52`, which bounds every partial sum and keeps the
//! final scores exactly representable as `f64` — the dense path's return
//! type — so argmax and scores are identical, not merely close.
//!
//! The kernel is only valid *without* decorrelation: whitening projects
//! queries through `f64` arithmetic whose rounding does not commute with
//! the per-chunk decomposition. [`ScoreLut::build`] rejects whitened
//! models and the classifier falls back to the dense path.
//!
//! ## Build cost
//!
//! The naive build (synthesize all `q^r` rows, bind, dot) costs
//! `O(m·k·q^r·D)`. Instead we use the row structure
//! `LUT(addr) = Σ_j ρ^j(L_{digit_j})`: with
//! `T_i[c][j][lv] = (P'_c ⊙ P_i ⊙ ρ^j(L_lv)) · C`, each table entry is
//! `S_i[c][addr] = Σ_j T_i[c][j][digit_j(addr)]` — only `m·k·r·q` masked
//! dot products of length `D`, then `r` adds per entry.

use hdc::hv::BipolarHv;
use hdc::{HdcError, Result};

use crate::chunking::ChunkLayout;
use crate::compress::{serial_u32, CompressedModel, MAX_SERIAL_CLASSES, MAX_SERIAL_FEATURES};
use crate::encoder::LookupEncoder;

/// Ceiling on serialized/loaded score-LUT entries (2^27 ≈ 134M entries,
/// 1 GiB of `i64`) — same role as [`crate::compress::MAX_REGEN_ELEMENTS`]:
/// a corrupt header must not request a multi-GB allocation.
pub const MAX_SERIAL_SCORE_ENTRIES: usize = 1 << 27;

/// Largest score magnitude the kernel accepts: `2^52`, chosen so every
/// partial sum fits `i64` with headroom *and* round-trips `i64 → f64`
/// exactly (f64 mantissa is 53 bits). The dense path returns scores as
/// `f64`, so this bound is what makes the two paths bit-identical rather
/// than approximately equal.
pub const MAX_EXACT_SCORE: i64 = 1 << 52;

/// Rejects a model whose worst-case score `D · max|C| · n` could exceed
/// [`MAX_EXACT_SCORE`]. Every per-chunk partial score is bounded by
/// `D · max|C| · r` and the full score by `D · max|C| · n`, so this single
/// product check covers both the `i64` accumulation and the exact-`f64`
/// representability of the result.
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] when the bound is exceeded (or the
/// bound computation itself overflows).
pub fn check_exact_score_bound(dim: usize, max_abs_combined: i64, n_features: usize) -> Result<()> {
    let bound = (dim as i64)
        .checked_mul(max_abs_combined)
        .and_then(|v| v.checked_mul(n_features as i64));
    match bound {
        Some(b) if b <= MAX_EXACT_SCORE => Ok(()),
        _ => Err(HdcError::invalid_config(
            "score_lut",
            format!(
                "worst-case score D·max|C|·n = {dim}·{max_abs_combined}·{n_features} \
                 exceeds the exact-integer bound 2^52"
            ),
        )),
    }
}

/// The precomputed per-chunk, per-class partial-score tables
/// `S_i[c][addr] = (P'_c ⊙ C ⊙ P_i) · LUT_i[addr]`.
///
/// Storage is one flat `i64` vector, chunk-major then address-major then
/// class-minor: the entry for `(chunk i, addr, class c)` lives at
/// `offsets[i] + addr·k + c`, so one prediction gathers `m` contiguous
/// `k`-length rows — cache-friendly and trivially vectorizable.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreLut {
    /// Flat partial scores (see struct docs for the layout).
    entries: Vec<i64>,
    /// Entry offset of each chunk's table; length `m + 1`, so chunk `i`
    /// spans `offsets[i]..offsets[i+1]` and holds `rows_i · k` entries.
    offsets: Vec<usize>,
    n_classes: usize,
}

impl ScoreLut {
    /// Precomputes the kernel from a fitted encoder and compressed model.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when the model is ineligible —
    /// whitening directions present (decorrelation breaks integer
    /// exactness), the table would exceed `budget_bytes` or
    /// [`MAX_SERIAL_SCORE_ENTRIES`], or the worst-case score violates
    /// [`MAX_EXACT_SCORE`] — and [`HdcError::DimensionMismatch`] when the
    /// encoder and compressed model disagree on `D`. Callers treat these
    /// as "fall back to the dense path".
    pub fn build(
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        budget_bytes: usize,
    ) -> Result<Self> {
        let _span = obs::span("score_lut_build");
        if compressed.n_directions() != 0 {
            return Err(HdcError::invalid_config(
                "score_lut",
                "whitened (decorrelated) models score through f64 projections; \
                 the integer score-LUT kernel requires decorrelate=false",
            ));
        }
        let levels = encoder.lut().levels();
        let dim = levels.dim();
        if dim != compressed.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: compressed.dim(),
                actual: dim,
            });
        }
        let layout = *encoder.layout();
        let k = compressed.n_classes();
        let total_entries = (k as u128).saturating_mul(layout.total_table_rows());
        let cap = (budget_bytes / std::mem::size_of::<i64>()).min(MAX_SERIAL_SCORE_ENTRIES);
        if total_entries > cap as u128 {
            return Err(HdcError::invalid_config(
                "score_lut",
                format!(
                    "table needs {total_entries} entries ({} bytes) > cap {cap} \
                     ({budget_bytes}-byte budget); falling back to the dense path",
                    total_entries.saturating_mul(8)
                ),
            ));
        }
        let max_abs = (0..compressed.n_vectors())
            .map(|g| compressed.combined(g).max_abs() as i64)
            .max()
            .unwrap_or(0);
        check_exact_score_bound(dim, max_abs, layout.n_features())?;

        let m = layout.n_chunks();
        let q = layout.q();
        let r_max = layout.chunk_len(0);
        // Rotated level hypervectors ρ^j(L_lv), shared by every chunk.
        let rotated: Vec<Vec<BipolarHv>> = (0..r_max)
            .map(|j| (0..q).map(|lv| levels.level(lv).rotated(j)).collect())
            .collect();
        let combined_i64: Vec<Vec<i64>> = (0..compressed.n_vectors())
            .map(|g| {
                compressed
                    .combined(g)
                    .as_slice()
                    .iter()
                    .map(|&v| v as i64)
                    .collect()
            })
            .collect();
        // Per-chunk entry bound for the debug overflow check below.
        let chunk_bound = (dim as i64) * max_abs * (r_max as i64);

        let mut entries = Vec::with_capacity(total_entries as usize);
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0usize);
        // T[c][j][lv] laid out flat at c·(r_max·q) + j·q + lv; rebuilt per
        // chunk (only the first chunk_len·q slots per class are used).
        let mut t = vec![0i64; k * r_max * q];
        for chunk in 0..m {
            let chunk_len = layout.chunk_len(chunk);
            let rows = layout.table_rows(chunk);
            let p_i = encoder.positions().key(chunk);
            for c in 0..k {
                let sign = compressed.key(c).bind(p_i);
                let weights = &combined_i64[compressed.group_of(c)];
                let base = c * r_max * q;
                for (j, rotated_row) in rotated.iter().enumerate().take(chunk_len) {
                    for (lv, rot) in rotated_row.iter().enumerate() {
                        t[base + j * q + lv] = Self::masked_sum(weights, &sign.bind(rot));
                    }
                }
            }
            // Walk addresses 0..rows with a base-q odometer over the digit
            // vector (most-significant digit first, matching
            // `ChunkLayout::address`): the next address increments the
            // least-significant (last) digit with carry.
            let mut digits = vec![0usize; chunk_len];
            for _addr in 0..rows {
                for c in 0..k {
                    let base = c * r_max * q;
                    let mut s = 0i64;
                    for (j, &dg) in digits.iter().enumerate() {
                        s += t[base + j * q + dg];
                    }
                    debug_assert!(
                        s.abs() <= chunk_bound,
                        "chunk {chunk} partial score {s} exceeds bound {chunk_bound}"
                    );
                    entries.push(s);
                }
                for d in digits.iter_mut().rev() {
                    *d += 1;
                    if *d < q {
                        break;
                    }
                    *d = 0;
                }
            }
            offsets.push(entries.len());
        }
        Ok(Self {
            entries,
            offsets,
            n_classes: k,
        })
    }

    /// `Σ_d ±v[d]` with signs from the packed bipolar key (bit 1 ⇔ −1),
    /// computed as `Σv − 2·Σ_{negative dims} v` — the same branchless
    /// masked sum as the dense path's per-class accumulation.
    fn masked_sum(v: &[i64], key: &BipolarHv) -> i64 {
        let total: i64 = v.iter().sum();
        let mut negative: i64 = 0;
        for (wi, &word) in key.words().iter().enumerate() {
            let base = wi * 64;
            let end = (base + 64).min(v.len());
            let mut bits = word;
            for &vd in &v[base..end] {
                negative += vd & -((bits & 1) as i64);
                bits >>= 1;
            }
        }
        total - 2 * negative
    }

    /// Per-class integer scores for pre-extracted chunk addresses: `m`
    /// contiguous table gathers and `m·k` adds.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] when the address count differs
    /// from `m` or an address exceeds its chunk's table.
    pub fn scores_i64(&self, addrs: &[u64]) -> Result<Vec<i64>> {
        let _span = obs::span("score_lut");
        obs::counter("kernel.lut.queries", 1);
        let m = self.n_chunks();
        if addrs.len() != m {
            return Err(HdcError::invalid_dataset(format!(
                "expected {m} chunk addresses, got {}",
                addrs.len()
            )));
        }
        let k = self.n_classes;
        let mut scores = vec![0i64; k];
        for (i, &addr) in addrs.iter().enumerate() {
            let start = self.offsets[i];
            let rows = (self.offsets[i + 1] - start) / k;
            if addr as usize >= rows {
                return Err(HdcError::invalid_dataset(format!(
                    "address {addr} out of range for chunk {i} ({rows} rows)"
                )));
            }
            let row = &self.entries[start + addr as usize * k..start + (addr as usize + 1) * k];
            for (s, &v) in scores.iter_mut().zip(row) {
                *s += v;
            }
        }
        obs::counter("kernel.lut.table_reads", m as u64);
        Ok(scores)
    }

    /// Per-class scores as `f64` — exactly equal to the dense path's
    /// output (the build-time [`MAX_EXACT_SCORE`] bound guarantees the
    /// `i64 → f64` cast is lossless).
    ///
    /// # Errors
    ///
    /// Same as [`ScoreLut::scores_i64`].
    pub fn scores(&self, addrs: &[u64]) -> Result<Vec<f64>> {
        Ok(self.scores_i64(addrs)?.iter().map(|&s| s as f64).collect())
    }

    /// Argmax over [`ScoreLut::scores_i64`] — first maximum wins, the same
    /// strict-`>` rule as [`CompressedModel::predict`], so ties break
    /// identically.
    ///
    /// # Errors
    ///
    /// Same as [`ScoreLut::scores_i64`].
    pub fn predict(&self, addrs: &[u64]) -> Result<usize> {
        let scores = self.scores_i64(addrs)?;
        let mut best = 0;
        let mut best_score = i64::MIN;
        for (i, &s) in scores.iter().enumerate() {
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        Ok(best)
    }

    /// Number of chunk tables `m`.
    pub fn n_chunks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of classes `k` per table row.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Table rows of chunk `i` (`q^len(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_chunks()`.
    pub fn rows(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) / self.n_classes
    }

    /// Bytes held by the precomputed tables.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<i64>()
    }

    /// Checks this kernel is consistent with the layout and compressed
    /// model it will serve — chunk count, per-chunk row counts, class
    /// count, and the no-whitening eligibility rule. Used after
    /// deserialization, where the three sections arrive independently.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] on any disagreement.
    pub fn validate_against(
        &self,
        layout: &ChunkLayout,
        compressed: &CompressedModel,
    ) -> Result<()> {
        if compressed.n_directions() != 0 {
            return Err(HdcError::invalid_dataset(
                "score-LUT section present on a whitened (decorrelated) model",
            ));
        }
        if self.n_chunks() != layout.n_chunks() {
            return Err(HdcError::invalid_dataset(format!(
                "score-LUT has {} chunk tables, layout expects {}",
                self.n_chunks(),
                layout.n_chunks()
            )));
        }
        if self.n_classes != compressed.n_classes() {
            return Err(HdcError::invalid_dataset(format!(
                "score-LUT has {} classes, compressed model has {}",
                self.n_classes,
                compressed.n_classes()
            )));
        }
        for i in 0..self.n_chunks() {
            if self.rows(i) != layout.table_rows(i) {
                return Err(HdcError::invalid_dataset(format!(
                    "score-LUT chunk {i} has {} rows, layout expects {}",
                    self.rows(i),
                    layout.table_rows(i)
                )));
            }
        }
        Ok(())
    }

    /// Serializes the kernel (`SLT1` format): chunk count, class count,
    /// per-chunk row counts, then the flat `i64` entries.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when a count exceeds the format
    /// caps (cannot happen for a kernel built by [`ScoreLut::build`]).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SLT1");
        let w32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        w32(
            &mut out,
            serial_u32("score-lut chunks", self.n_chunks(), MAX_SERIAL_FEATURES)?,
        );
        w32(
            &mut out,
            serial_u32("score-lut classes", self.n_classes, MAX_SERIAL_CLASSES)?,
        );
        for i in 0..self.n_chunks() {
            out.extend_from_slice(&(self.rows(i) as u64).to_le_bytes());
        }
        for &e in &self.entries {
            out.extend_from_slice(&e.to_le_bytes());
        }
        Ok(out)
    }

    /// Deserializes a kernel written by [`ScoreLut::to_bytes`].
    ///
    /// Headers are validated against the remaining stream length and the
    /// [`MAX_SERIAL_SCORE_ENTRIES`] / [`crate::compress::MAX_SERIAL_CLASSES`]
    /// / [`crate::compress::MAX_SERIAL_FEATURES`] caps *before* any
    /// allocation, so a corrupt artifact errors instead of requesting a
    /// multi-GB buffer; trailing bytes are rejected with the offset.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for a malformed, truncated, or
    /// over-long stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(HdcError::invalid_dataset("truncated score-LUT stream"));
            }
            let out = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(out)
        };
        if take(&mut pos, 4)? != b"SLT1" {
            return Err(HdcError::invalid_dataset(
                "bad magic: not an SLT1 score-LUT",
            ));
        }
        let u32v = |pos: &mut usize| -> Result<u32> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("len checked"),
            ))
        };
        let m = u32v(&mut pos)? as usize;
        let k = u32v(&mut pos)? as usize;
        if m == 0 || m > MAX_SERIAL_FEATURES {
            return Err(HdcError::invalid_dataset(format!(
                "score-LUT chunk count {m} outside 1..={MAX_SERIAL_FEATURES}"
            )));
        }
        if k == 0 || k > MAX_SERIAL_CLASSES {
            return Err(HdcError::invalid_dataset(format!(
                "score-LUT class count {k} outside 1..={MAX_SERIAL_CLASSES}"
            )));
        }
        // Row counts: 8 bytes each, checked against the remaining stream
        // before the loop allocates anything.
        if m.saturating_mul(8) > bytes.len() - pos {
            return Err(HdcError::invalid_dataset(
                "score-LUT stream too short for chunk row counts",
            ));
        }
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for i in 0..m {
            let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len checked"));
            if rows == 0 {
                return Err(HdcError::invalid_dataset(format!(
                    "score-LUT chunk {i} claims zero rows"
                )));
            }
            let chunk_entries = usize::try_from(rows)
                .ok()
                .and_then(|r| r.checked_mul(k))
                .and_then(|e| e.checked_add(total))
                .filter(|&e| e <= MAX_SERIAL_SCORE_ENTRIES)
                .ok_or_else(|| {
                    HdcError::invalid_dataset(format!(
                        "score-LUT chunk {i} pushes the entry count past the \
                         {MAX_SERIAL_SCORE_ENTRIES}-entry limit"
                    ))
                })?;
            total = chunk_entries;
            offsets.push(total);
        }
        if total.saturating_mul(8) > bytes.len() - pos {
            return Err(HdcError::invalid_dataset(
                "score-LUT stream too short for its entries",
            ));
        }
        let mut entries = Vec::with_capacity(total);
        for _ in 0..total {
            entries.push(i64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("len checked"),
            ));
        }
        if pos != bytes.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} trailing byte(s) after score-LUT (offset {pos})",
                bytes.len() - pos
            )));
        }
        Ok(Self {
            entries,
            offsets,
            n_classes: k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::encoding::Encode;
    use hdc::hv::DenseHv;
    use hdc::levels::{LevelMemory, LevelScheme};
    use hdc::model::ClassModel;
    use hdc::quantize::{Quantization, Quantizer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::compress::CompressionConfig;
    use crate::lut::TableMode;

    /// A fitted encoder + compressed model pair over random classes.
    fn setup(
        n: usize,
        r: usize,
        q: usize,
        dim: usize,
        k: usize,
        group: usize,
        seed: u64,
    ) -> (LookupEncoder, CompressedModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, q).unwrap();
        let layout = ChunkLayout::new(n, r, q).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, seed).unwrap();
        let classes = (0..k)
            .map(|_| DenseHv::from_vec((0..dim).map(|_| rng.gen_range(-30..=30)).collect()))
            .collect();
        let model = ClassModel::from_classes(classes).unwrap();
        let config = CompressionConfig::new()
            .with_decorrelate(false)
            .with_max_classes_per_vector(group);
        let compressed = CompressedModel::compress(&model, &config).unwrap();
        (encoder, compressed)
    }

    fn random_features(n: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    /// The core exactness contract: for random models (remainder chunks
    /// and multi-group class packing included), the kernel's scores equal
    /// the dense path's f64 scores exactly and the argmax is identical.
    #[test]
    fn kernel_scores_match_dense_path_exactly() {
        for (n, r, q, dim, k, group) in [
            (10, 5, 4, 128, 3, 12),
            (13, 5, 4, 200, 7, 3),  // remainder chunk + multiple groups
            (23, 4, 2, 64, 26, 12), // many classes, 3 groups
        ] {
            let (encoder, compressed) = setup(n, r, q, dim, k, group, 42 + n as u64);
            let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..25 {
                let features = random_features(n, &mut rng);
                let addrs = encoder.addresses(&features).unwrap();
                let h = encoder.encode(&features).unwrap();
                let dense = compressed.scores(&h).unwrap();
                let fast = lut.scores(&addrs).unwrap();
                assert_eq!(fast, dense, "scores diverged (n={n}, k={k})");
                assert_eq!(
                    lut.predict(&addrs).unwrap(),
                    compressed.predict(&h).unwrap(),
                    "argmax diverged (n={n}, k={k})"
                );
            }
        }
    }

    /// The dense integer scores are whole numbers; the kernel reproduces
    /// them in i64 without any f64 round-trip.
    #[test]
    fn kernel_scores_are_exact_integers() {
        let (encoder, compressed) = setup(13, 5, 4, 200, 5, 12, 5);
        let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let features = random_features(13, &mut rng);
        let addrs = encoder.addresses(&features).unwrap();
        let ints = lut.scores_i64(&addrs).unwrap();
        let floats = lut.scores(&addrs).unwrap();
        let dense = compressed
            .scores(&encoder.encode(&features).unwrap())
            .unwrap();
        for ((i, f), d) in ints.iter().zip(&floats).zip(&dense) {
            assert_eq!(*i as f64, *f);
            assert_eq!(*f, *d);
            assert_eq!(d.fract(), 0.0);
        }
    }

    #[test]
    fn rejects_whitened_models() {
        let mut rng = StdRng::seed_from_u64(11);
        let levels = LevelMemory::generate(64, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, 4).unwrap();
        let layout = ChunkLayout::new(10, 5, 4).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 11).unwrap();
        let classes = (0..3)
            .map(|_| DenseHv::from_vec((0..64).map(|_| rng.gen_range(-20..=20)).collect()))
            .collect();
        let model = ClassModel::from_classes(classes).unwrap();
        let whitened = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        assert!(whitened.n_directions() > 0);
        let err = ScoreLut::build(&encoder, &whitened, usize::MAX).unwrap_err();
        assert!(err.to_string().contains("decorrelate"), "{err}");
    }

    #[test]
    fn rejects_budget_overflow() {
        let (encoder, compressed) = setup(10, 5, 4, 64, 3, 12, 13);
        // 2 chunks × 1024 rows × 3 classes × 8 B = 49 KiB > 1 KiB budget.
        let err = ScoreLut::build(&encoder, &compressed, 1024).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        assert!(ScoreLut::build(&encoder, &compressed, 64 << 10).is_ok());
    }

    #[test]
    fn score_bound_check_rejects_oversized_products() {
        assert!(check_exact_score_bound(2000, 1000, 617).is_ok());
        assert!(check_exact_score_bound(1 << 20, 1 << 20, 1 << 20).is_err());
        // Exactly at the bound is accepted, one past is not.
        assert!(check_exact_score_bound(1 << 26, 1 << 26, 1).is_ok());
        assert!(check_exact_score_bound(1 << 26, (1 << 26) + 1, 1).is_err());
    }

    #[test]
    fn build_rejects_out_of_bound_scores() {
        let mut rng = StdRng::seed_from_u64(17);
        // Fixed-scale compression rescales each class to L2 norm `s`, so a
        // constant class lands at s/√D per dim and the worst-case score is
        // √D·s·n. With D=1024, s=i32::MAX, n=2^17 that is ≈ 2^53 > 2^52.
        let dim = 1024;
        let n = 1 << 17;
        let levels = LevelMemory::generate(dim, 2, LevelScheme::RandomFlips, &mut rng).unwrap();
        let quantizer = Quantizer::fit(Quantization::Linear, &[0.0, 1.0], 2).unwrap();
        let layout = ChunkLayout::new(n, 8, 2).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 17).unwrap();
        let classes = vec![DenseHv::from_vec(vec![1; dim]), DenseHv::zeros(dim)];
        let model = ClassModel::from_classes(classes).unwrap();
        let config = CompressionConfig::new()
            .with_decorrelate(false)
            .with_scale(i32::MAX);
        let compressed = CompressedModel::compress(&model, &config).unwrap();
        let err = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap_err();
        assert!(err.to_string().contains("2^52"), "{err}");
    }

    #[test]
    fn address_validation_errors_cleanly() {
        let (encoder, compressed) = setup(10, 5, 4, 64, 3, 12, 19);
        let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
        assert!(lut.scores_i64(&[0]).is_err()); // wrong count
        assert!(lut.scores_i64(&[0, 1024]).is_err()); // addr ≥ rows
        assert!(lut.scores_i64(&[0, 1023]).is_ok());
    }

    #[test]
    fn accessors_report_geometry() {
        let (encoder, compressed) = setup(13, 5, 2, 64, 4, 12, 23);
        let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
        assert_eq!(lut.n_chunks(), 3);
        assert_eq!(lut.n_classes(), 4);
        assert_eq!(lut.rows(0), 32);
        assert_eq!(lut.rows(2), 8); // remainder chunk: 3 features, 2^3
        assert_eq!(lut.size_bytes(), (32 + 32 + 8) * 4 * 8);
        lut.validate_against(encoder.layout(), &compressed).unwrap();
    }

    #[test]
    fn round_trips_through_bytes() {
        let (encoder, compressed) = setup(13, 5, 4, 128, 5, 3, 29);
        let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
        let bytes = lut.to_bytes().unwrap();
        let back = ScoreLut::from_bytes(&bytes).unwrap();
        assert_eq!(back, lut);
        back.validate_against(encoder.layout(), &compressed)
            .unwrap();
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let (encoder, compressed) = setup(10, 5, 2, 64, 3, 12, 31);
        let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
        let bytes = lut.to_bytes().unwrap();
        // Every truncation errors; trailing bytes error.
        for cut in 0..bytes.len() {
            assert!(
                ScoreLut::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} parsed"
            );
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(ScoreLut::from_bytes(&longer).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ScoreLut::from_bytes(&bad).is_err());
        // A row-count header lying about a huge table must be rejected
        // before allocation (chunk count at offset 4, rows at offset 12).
        let mut lying = bytes.clone();
        lying[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ScoreLut::from_bytes(&lying).is_err());
        // Byte flips never panic; survivors must stay usable.
        let addrs = encoder.addresses(&[0.5; 10]).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            if let Ok(back) = ScoreLut::from_bytes(&flipped) {
                let _ = back.scores_i64(&addrs);
            }
        }
        let _ = compressed; // geometry partner kept alive for clarity
    }

    #[test]
    fn validate_against_catches_mismatches() {
        let (encoder, compressed) = setup(10, 5, 4, 64, 3, 12, 37);
        let lut = ScoreLut::build(&encoder, &compressed, usize::MAX).unwrap();
        let other_layout = ChunkLayout::new(15, 5, 4).unwrap();
        assert!(lut.validate_against(&other_layout, &compressed).is_err());
        let (_, other_k) = setup(10, 5, 4, 64, 5, 12, 37);
        assert!(lut.validate_against(encoder.layout(), &other_k).is_err());
        let wrong_rows = ChunkLayout::new(10, 5, 2).unwrap();
        assert!(lut.validate_against(&wrong_rows, &compressed).is_err());
    }
}
