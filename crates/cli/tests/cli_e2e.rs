//! End-to-end tests of the `lookhd` binary: train on a CSV, persist,
//! evaluate, predict, introspect — exactly as a user would.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lookhd"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lookhd_cli_e2e_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create workdir");
    dir
}

/// Writes a small three-class CSV dataset.
fn write_dataset(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    let mut train = String::from("f0,f1,f2,f3,label\n");
    let mut test = String::new();
    let mut queries = String::new();
    for i in 0..60 {
        let class = i % 3;
        let base = [0.1, 0.5, 0.9][class];
        let jitter = (i % 7) as f64 * 0.004;
        let row = format!(
            "{:.3},{:.3},{:.3},{:.3}",
            base + jitter,
            base - jitter,
            base + 2.0 * jitter,
            base
        );
        if i < 45 {
            train.push_str(&format!("{row},{class}\n"));
        } else {
            test.push_str(&format!("{row},{class}\n"));
            queries.push_str(&format!("{row}\n"));
        }
    }
    let train_path = dir.join("train.csv");
    let test_path = dir.join("test.csv");
    let queries_path = dir.join("queries.csv");
    fs::write(&train_path, train).expect("write train");
    fs::write(&test_path, test).expect("write test");
    fs::write(&queries_path, queries).expect("write queries");
    (train_path, test_path, queries_path)
}

#[test]
fn train_evaluate_predict_round_trip() {
    let dir = workdir("round_trip");
    let (train, test, queries) = write_dataset(&dir);
    let model = dir.join("model.lks");

    let out = bin()
        .args([
            "train",
            "--data",
            train.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--dim",
            "256",
            "--epochs",
            "2",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists(), "model file must be written");

    let out = bin()
        .args([
            "evaluate",
            "--model",
            model.to_str().unwrap(),
            "--data",
            test.to_str().unwrap(),
        ])
        .output()
        .expect("run evaluate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("accuracy over 15 samples"),
        "unexpected output: {text}"
    );
    assert!(
        text.contains("100.0% compressed"),
        "easy data should be perfect: {text}"
    );

    let out = bin()
        .args([
            "predict",
            "--model",
            model.to_str().unwrap(),
            "--data",
            queries.to_str().unwrap(),
        ])
        .output()
        .expect("run predict");
    assert!(out.status.success());
    let predictions: Vec<&str> = std::str::from_utf8(&out.stdout)
        .expect("utf8")
        .lines()
        .collect();
    assert_eq!(predictions.len(), 15);
    // Queries cycle classes 0,1,2 in the same order as the labels.
    assert_eq!(predictions[0], "0");
    assert_eq!(predictions[1], "1");
    assert_eq!(predictions[2], "2");

    let out = bin()
        .args(["info", "--model", model.to_str().unwrap()])
        .output()
        .expect("run info");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("features (n):        4"));
    assert!(text.contains("classes (k):         3"));
    assert!(text.contains("dimensionality (D):  256"));

    let out = bin()
        .args(["estimate", "--model", model.to_str().unwrap()])
        .output()
        .expect("run estimate");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("per query"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kernel_flags_select_and_report_kernels() {
    let dir = workdir("kernel_flags");
    let (train, test, _) = write_dataset(&dir);

    // New spelling: an explicit binary kernel with multifold enabled.
    let binary_model = dir.join("binary.lks");
    let out = bin()
        .args([
            "train",
            "--data",
            train.to_str().unwrap(),
            "--out",
            binary_model.to_str().unwrap(),
            "--dim",
            "256",
            "--epochs",
            "2",
            "--kernel",
            "binary",
            "--multifold",
            "2",
        ])
        .output()
        .expect("run train --kernel binary");
    assert!(
        out.status.success(),
        "binary train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("kernel: binary (approximate;"),
        "missing kernel report: {text}"
    );

    // The artifact reports its kernel in `info`, and a `--kernel` override
    // rebuilds it in place.
    let out = bin()
        .args(["info", "--model", binary_model.to_str().unwrap()])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kernel:              binary"), "{text}");
    let out = bin()
        .args([
            "info",
            "--model",
            binary_model.to_str().unwrap(),
            "--kernel",
            "dense",
        ])
        .output()
        .expect("run info --kernel dense");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kernel:              dense"), "{text}");

    // The binary model still classifies the easy test split.
    let out = bin()
        .args([
            "evaluate",
            "--model",
            binary_model.to_str().unwrap(),
            "--data",
            test.to_str().unwrap(),
        ])
        .output()
        .expect("run evaluate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("100.0% compressed"), "{text}");

    // The removed --score-lut spelling is rejected with a pointer to
    // the replacement, not silently ignored.
    let out = bin()
        .args([
            "train",
            "--data",
            train.to_str().unwrap(),
            "--out",
            dir.join("removed.lks").to_str().unwrap(),
            "--score-lut",
        ])
        .output()
        .expect("run train --score-lut");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--score-lut was removed"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let lut_model = dir.join("lut.lks");
    let out = bin()
        .args([
            "train",
            "--data",
            train.to_str().unwrap(),
            "--out",
            lut_model.to_str().unwrap(),
            "--dim",
            "256",
            "--epochs",
            "2",
            "--kernel",
            "auto",
        ])
        .output()
        .expect("run train --kernel auto");
    assert!(
        out.status.success(),
        "kernel-auto train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kernel: lut (exact;"), "{text}");
    let out = bin()
        .args(["info", "--model", lut_model.to_str().unwrap()])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kernel:              lut"), "{text}");

    // Unknown kinds are rejected with the expected vocabulary.
    let out = bin()
        .args([
            "train",
            "--data",
            train.to_str().unwrap(),
            "--out",
            dir.join("bogus.lks").to_str().unwrap(),
            "--kernel",
            "bogus",
        ])
        .output()
        .expect("run train --kernel bogus");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("expected auto, dense, lut, or binary"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn inspect_summarizes_a_csv() {
    let dir = workdir("inspect");
    let (train, _, _) = write_dataset(&dir);
    let out = bin()
        .args(["inspect", "--data", train.to_str().unwrap()])
        .output()
        .expect("run inspect");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("features (n):   4"), "{text}");
    assert!(text.contains("classes (k):    3"), "{text}");
    assert!(text.contains("suggested:"), "{text}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors_for_bad_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = bin()
        .args(["train", "--data", "missing.csv"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    let out = bin()
        .args([
            "evaluate",
            "--model",
            "/nonexistent/model.lks",
            "--data",
            "x.csv",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());

    let out = bin().output().expect("run");
    assert!(out.status.success(), "bare invocation prints usage");
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

/// Minimal structural validation of the metrics JSON without a JSON
/// parser: balanced braces/brackets outside strings, and the expected
/// top-level keys.
fn assert_looks_like_metrics_json(text: &str) {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON: {text}");
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON: {text}");
    assert!(!in_string, "unterminated string: {text}");
    assert!(text.contains("\"version\": 3"), "{text}");
    assert!(text.contains("\"spans\""), "{text}");
    assert!(text.contains("\"counters\""), "{text}");
}

#[test]
fn metrics_flag_writes_stage_spans() {
    let dir = workdir("metrics");
    let (train, test, _) = write_dataset(&dir);
    let model = dir.join("model.lks");
    let metrics = dir.join("train_metrics.json");

    let out = bin()
        .args([
            "train",
            "--data",
            train.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--dim",
            "256",
            "--epochs",
            "1",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = fs::read_to_string(&metrics).expect("metrics file must be written");
    assert_looks_like_metrics_json(&text);
    // The training pipeline's stages must all appear as named spans with
    // real durations. Span *paths* vary with nesting (worker threads
    // record at the root), so match names and rely on snapshot ordering
    // only for the version header.
    for stage in ["encode", "counter_train", "compress", "predict"] {
        assert!(
            text.contains(stage),
            "stage {stage} missing from metrics: {text}"
        );
    }
    let totals: Vec<u64> = text
        .match_indices("\"total_ns\": ")
        .map(|(i, tag)| {
            text[i + tag.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("total_ns must be an integer")
        })
        .collect();
    assert!(!totals.is_empty(), "no spans recorded: {text}");
    assert!(
        totals.iter().any(|&t| t > 0),
        "all span durations are zero: {text}"
    );
    assert!(
        text.contains("counter_train.samples"),
        "counters missing: {text}"
    );

    // Every subcommand takes the flag; a pure-inference run records
    // predict/encode but no training stages.
    let eval_metrics = dir.join("eval_metrics.json");
    let out = bin()
        .args([
            "evaluate",
            "--model",
            model.to_str().unwrap(),
            "--data",
            test.to_str().unwrap(),
            "--metrics",
            eval_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run evaluate");
    assert!(out.status.success());
    let text = fs::read_to_string(&eval_metrics).expect("metrics file must be written");
    assert_looks_like_metrics_json(&text);
    assert!(text.contains("predict"), "{text}");
    assert!(!text.contains("counter_train"), "{text}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rejects_malformed_csv_with_line_numbers() {
    let dir = workdir("bad_csv");
    let bad = dir.join("bad.csv");
    fs::write(&bad, "1,2,0\n1,oops,1\n").expect("write");
    let model = dir.join("m.lks");
    let out = bin()
        .args([
            "train",
            "--data",
            bad.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let _ = fs::remove_dir_all(&dir);
}
