//! `lookhd` — train, evaluate, and deploy LookHD classifiers from the
//! command line.
//!
//! ```text
//! lookhd train    --data train.csv --out model.lks [--dim 2000 --q 4 --r 5
//!                 --epochs 10 --linear --group 12 --seed 42 --threads 4
//!                 --kernel auto|dense|lut|binary --kernel-budget BYTES
//!                 --multifold N]
//! lookhd evaluate --model model.lks --data test.csv [--threads 4]
//! lookhd predict  --model model.lks --data queries.csv [--threads 4]
//! lookhd info     --model model.lks [--kernel KIND]
//! lookhd inspect  --data data.csv
//! lookhd estimate --model model.lks [--samples 1000]
//! lookhd serve    --model model.lks [--addr 127.0.0.1:4100 --threads 1
//!                 --max-batch 16 --queue-cap 1024 --timeout-ms 1000
//!                 --admin-addr 127.0.0.1:4101 --metrics-interval 1000
//!                 --slo-p99-ms 5 --slo-error-rate 0.01
//!                 --kernel KIND --online --refresh-after N
//!                 --drift-threshold F]
//! ```
//!
//! CSV rows are `feature,…,feature,label` (labels in the final column;
//! `predict` takes label-free rows). An optional header line is skipped.
//!
//! `--threads` shards training and batch inference across OS threads
//! (`0` = all cores). Results are bit-identical for every thread count;
//! only wall-clock time changes.
//!
//! `--metrics out.json` (valid on every subcommand) enables the
//! observability registry for the run and writes one JSON document of
//! timing spans and counters when the command finishes.
//!
//! `--admin-addr HOST:PORT` (serve only) binds a second, HTTP listener
//! with live telemetry: `/metrics.json` (windowed snapshot JSON),
//! `/metrics` (Prometheus text with dimensional labels and OpenMetrics
//! tail exemplars), `/trace.json` (Chrome trace-event export of the
//! per-request trace ring), `/healthz` (SLO-aware readiness: `503` plus
//! a reason while draining, in sustained admission shed, or burning a
//! declared objective), and `/slo.json` (burn-rate detail). It enables
//! the metrics registry and the trace ring for the server's lifetime.
//! `--slo-p99-ms F` / `--slo-error-rate F` declare the objectives.
//!
//! `--metrics-interval MS` (serve only, requires `--metrics`) rewrites
//! the metrics file every `MS` milliseconds, atomically, so a crashed or
//! killed server still leaves a recent snapshot behind.
//!
//! `--kernel {auto,dense,lut,binary}` selects the scoring kernel. On
//! `train` it is built at fit time and persisted with the model; on
//! `info` and `serve` it rebuilds the kernel of a loaded `LKS1` artifact
//! without retraining. `auto` tries the score-LUT and falls back to dense
//! when ineligible; `lut` (exact, precomputed tables; `--kernel-budget`
//! caps their bytes) and `binary` (approximate bit-packed Hamming
//! scoring; `--multifold N` enables prefix-scoring with margin-gated
//! escalation) are hard requests that fail when the model cannot satisfy
//! them. Non-dense kinds imply compression without decorrelation at train
//! time.

mod args;

use std::fs;
use std::io::Write;
use std::process::ExitCode;

use args::Args;
use hdc::quantize::Quantization;
use hdc::{Classifier, FitClassifier};
use lookhd::{CompressionConfig, KernelKind, KernelSpec, LookHdClassifier, LookHdConfig};
use lookhd_datasets::csv;
use lookhd_engine::EngineConfig;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{CpuModel, FpgaModel, WorkloadShape};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Prints a line, tolerating a closed pipe (e.g. `lookhd info | head`).
fn out(line: impl std::fmt::Display) {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(lock, "{line}");
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw).map_err(|e| e.to_string())?;
    let metrics_path = args.get("metrics").map(str::to_owned);
    if metrics_path.is_some() {
        obs::set_enabled(true);
    }
    let result = match args.subcommand() {
        Some("train") => train(&args),
        Some("evaluate") => evaluate(&args),
        Some("predict") => predict(&args),
        Some("info") => info(&args),
        Some("inspect") => inspect(&args),
        Some("estimate") => estimate(&args),
        Some("serve") => serve(&args),
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
        None => {
            out(USAGE);
            Ok(())
        }
    };
    if let Some(path) = metrics_path {
        // Write whatever was recorded even when the command failed — a
        // partial trace is exactly what you want when diagnosing the
        // failure. The command's own error still wins.
        let json = obs::snapshot().to_json();
        let write_result =
            fs::write(&path, json).map_err(|e| format!("writing metrics to {path}: {e}"));
        result.and(write_result)
    } else {
        result
    }
}

const USAGE: &str = "usage:
  lookhd train    --data train.csv --out model.lks [--dim N --q N --r N
                  --epochs N --linear --group N --seed N --threads N
                  --kernel auto|dense|lut|binary --kernel-budget BYTES
                  --multifold N]
  lookhd evaluate --model model.lks --data test.csv [--threads N]
  lookhd predict  --model model.lks --data queries.csv [--threads N]
  lookhd info     --model model.lks [--kernel KIND]
  lookhd inspect  --data data.csv
  lookhd estimate --model model.lks [--samples N]
  lookhd serve    --model model.lks [--addr HOST:PORT --threads N
                  --max-batch N --queue-cap N --timeout-ms N
                  --reactors N --max-conns N
                  --admin-addr HOST:PORT --metrics-interval MS
                  --slo-p99-ms F --slo-error-rate F
                  --kernel KIND --online --refresh-after N
                  --drift-threshold F]

--threads shards work across OS threads (0 = all cores) without changing
any result bit; under `serve` it sets the batch-worker count instead.
--kernel selects the scoring kernel: auto (score-LUT with dense fallback),
dense (exact reference), lut (exact precomputed tables; --kernel-budget
caps their bytes), binary (approximate bit-packed Hamming scoring;
--multifold N scores word prefixes and escalates only on thin margins).
On train it is built and persisted with the model (non-dense kinds imply
compression without decorrelation); on info/serve it rebuilds the kernel
of a loaded LKS1 artifact without retraining.
--reactors N (serve) sets the I/O event-loop thread count; --max-conns N
caps concurrently open connections (excess connects get one Overloaded
frame and are closed).
--metrics out.json (any subcommand) records per-stage timing spans and
counters and writes one JSON document when the command finishes.
--admin-addr (serve) adds a live-telemetry HTTP listener: /metrics.json,
/metrics (Prometheus with dimensional labels + OpenMetrics exemplars),
/trace.json (Chrome trace events), /healthz (503 + reason while
draining, in sustained admission shed, or burning a declared SLO),
/slo.json (targets, windowed measurements, burn rates).
--slo-p99-ms F / --slo-error-rate F (serve, with --admin-addr) declare
the p99 latency (ms) and error-rate (0..1) objectives /healthz judges
with multi-window (10 s + 60 s) burn rates.
--metrics-interval MS (serve, with --metrics) rewrites the metrics file
atomically every MS milliseconds so a killed server keeps its data.
--online (serve, LKS1 models only) folds LHF1 feedback frames into live
training counters on a dedicated trainer thread; a refresh frame
materializes and hot-swaps a new model version without dropping traffic.
--refresh-after N (with --online) arms the automatic refresh once N
feedback folds have accumulated since the last swap (0 = manual only);
--drift-threshold F (default 0.25) additionally requires the served-vs-
observed class distributions to diverge by at least F (half L1, 0..1).";

fn load_classifier(args: &Args) -> Result<LookHdClassifier, String> {
    let path = args.require("model").map_err(|e| e.to_string())?;
    let bytes = fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut clf =
        LookHdClassifier::from_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?;
    clf.set_engine(engine_config(args)?);
    Ok(clf)
}

/// The engine configuration from `--threads` (default: serial).
fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let threads = args.get_or("threads", 1usize).map_err(|e| e.to_string())?;
    Ok(EngineConfig::new().with_threads(threads))
}

/// Kernel selection from `--kernel {auto,dense,lut,binary}` plus the
/// `--kernel-budget BYTES` / `--multifold N` knobs. `None` means the
/// flag family was absent.
fn kernel_spec(args: &Args) -> Result<Option<KernelSpec>, String> {
    // The one-release deprecation window for `--score-lut` is over; the
    // argument parser ignores unknown switches, so reject the removed
    // spelling explicitly instead of silently serving a dense kernel.
    if args.switch("score-lut") {
        return Err("--score-lut was removed; use --kernel auto (or lut)".to_owned());
    }
    let kind = match args.get("kernel") {
        Some(raw) => Some(raw.parse::<KernelKind>().map_err(|e| e.to_string())?),
        None => None,
    };
    let Some(kind) = kind else {
        return Ok(None);
    };
    let budget = args
        .get_or("kernel-budget", KernelSpec::DEFAULT_BUDGET_BYTES)
        .map_err(|e| e.to_string())?;
    let multifold = args
        .get_or("multifold", 0usize)
        .map_err(|e| e.to_string())?;
    Ok(Some(
        KernelSpec::new(kind)
            .with_budget_bytes(budget)
            .with_multifold(multifold),
    ))
}

/// One human-readable line describing a classifier's active kernel.
fn kernel_line(clf: &LookHdClassifier) -> String {
    let kernel = clf.kernel();
    format!(
        "{} ({}; {})",
        kernel.name(),
        if kernel.is_exact() {
            "exact"
        } else {
            "approximate"
        },
        kernel.describe()
    )
}

fn train(args: &Args) -> Result<(), String> {
    let data_path = args.require("data").map_err(|e| e.to_string())?;
    let out_path = args.require("out").map_err(|e| e.to_string())?;
    let split = csv::load_split(data_path).map_err(|e| format!("{data_path}: {e}"))?;
    let dim = args.get_or("dim", 2000usize).map_err(|e| e.to_string())?;
    let q = args.get_or("q", 4usize).map_err(|e| e.to_string())?;
    let r = args.get_or("r", 5usize).map_err(|e| e.to_string())?;
    let epochs = args.get_or("epochs", 10usize).map_err(|e| e.to_string())?;
    let group = args.get_or("group", 12usize).map_err(|e| e.to_string())?;
    let seed = args
        .get_or("seed", 0x10_0c_4du64)
        .map_err(|e| e.to_string())?;
    let kernel = kernel_spec(args)?;
    let mut compression = CompressionConfig::new().with_max_classes_per_vector(group.max(1));
    if kernel.is_some_and(|k| k.kind != KernelKind::Dense) {
        // The lut and binary kernels require integer per-dimension
        // scoring end to end; decorrelation whitens queries through f64
        // arithmetic, so non-dense kernel requests turn it off.
        compression = compression.with_decorrelate(false);
    }
    let mut config = LookHdConfig::new()
        .with_dim(dim)
        .with_q(q)
        .with_r(r)
        .with_retrain_epochs(epochs)
        .with_compression(compression)
        .with_seed(seed)
        .with_engine(engine_config(args)?)
        .with_kernel(kernel.unwrap_or_default());
    if args.switch("linear") {
        config = config.with_quantization(Quantization::Linear);
    }
    let clf = LookHdClassifier::fit(&config, &split.features, &split.labels)
        .map_err(|e| format!("training: {e}"))?;
    let train_acc = clf
        .evaluate(&split.features, &split.labels)
        .map_err(|e| format!("scoring: {e}"))?;
    let bytes = clf.to_bytes().map_err(|e| format!("serializing: {e}"))?;
    fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    out(format!(
        "trained on {} samples ({} features, {} classes): train accuracy {:.1}%",
        split.len(),
        split.features[0].len(),
        clf.compressed().n_classes(),
        train_acc * 100.0
    ));
    out(format!(
        "saved {out_path} ({} bytes; {} combined vector(s), retrained {} epoch(s))",
        bytes.len(),
        clf.compressed().n_vectors(),
        clf.report().epochs_run()
    ));
    if let Some(requested) = kernel {
        let active = clf.kernel();
        if requested.kind == KernelKind::Auto && active.name() == "dense" {
            out("kernel: auto fell back to the dense path (model ineligible or over budget)");
        } else {
            out(format!("kernel: {}", kernel_line(&clf)));
        }
    }
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let clf = load_classifier(args)?;
    let data_path = args.require("data").map_err(|e| e.to_string())?;
    let split = csv::load_split(data_path).map_err(|e| format!("{data_path}: {e}"))?;
    let compressed = clf
        .predict_batch(&split.features)
        .map_err(|e| e.to_string())?;
    let uncompressed = clf
        .predict_batch_uncompressed(&split.features)
        .map_err(|e| e.to_string())?;
    let hits = |preds: &[usize]| {
        preds
            .iter()
            .zip(&split.labels)
            .filter(|(p, y)| p == y)
            .count()
    };
    let n = split.len() as f64;
    out(format!(
        "accuracy over {} samples: {:.1}% compressed, {:.1}% uncompressed",
        split.len(),
        100.0 * hits(&compressed) as f64 / n,
        100.0 * hits(&uncompressed) as f64 / n
    ));
    Ok(())
}

fn predict(args: &Args) -> Result<(), String> {
    let clf = load_classifier(args)?;
    let data_path = args.require("data").map_err(|e| e.to_string())?;
    let rows = csv::load_features(data_path).map_err(|e| format!("{data_path}: {e}"))?;
    for class in clf.predict_batch(&rows).map_err(|e| e.to_string())? {
        out(class);
    }
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let mut clf = load_classifier(args)?;
    if let Some(spec) = kernel_spec(args)? {
        // Inspect what a different kernel would look like on this model
        // (rebuilt in place, nothing persisted).
        clf.set_kernel(&spec)
            .map_err(|e| format!("rebuilding kernel: {e}"))?;
    }
    let layout = clf.encoder().layout();
    out("LookHD classifier:");
    out(format!("  features (n):        {}", layout.n_features()));
    out(format!(
        "  classes (k):         {}",
        clf.compressed().n_classes()
    ));
    out(format!("  dimensionality (D):  {}", clf.model().dim()));
    out(format!(
        "  quantization (q):    {} ({:?})",
        layout.q(),
        clf.encoder().quantizer().kind()
    ));
    out(format!(
        "  chunk size (r):      {} ({} chunks)",
        layout.r(),
        layout.n_chunks()
    ));
    out(format!(
        "  table mode:          {:?}",
        clf.encoder().lut().mode()
    ));
    out(format!(
        "  model size:          {} B compressed ({} vectors) / {} B uncompressed",
        clf.compressed().size_bytes(),
        clf.compressed().n_vectors(),
        clf.model().size_bytes()
    ));
    out(format!("  kernel:              {}", kernel_line(&clf)));
    out(format!(
        "  class correlation:   {:.3}",
        clf.model().class_correlation()
    ));
    Ok(())
}

fn inspect(args: &Args) -> Result<(), String> {
    let data_path = args.require("data").map_err(|e| e.to_string())?;
    let split = csv::load_split(data_path).map_err(|e| format!("{data_path}: {e}"))?;
    let summary = lookhd_datasets::summary::summarize(&split)
        .ok_or_else(|| "dataset is empty or ragged".to_owned())?;
    out(format!("dataset: {data_path}"));
    out(format!("  samples:        {}", summary.n_samples));
    out(format!("  features (n):   {}", summary.n_features));
    out(format!("  classes (k):    {}", summary.n_classes));
    out(format!("  class counts:   {:?}", summary.class_counts));
    out(format!("  imbalance:      {:.2}x", summary.imbalance()));
    out(format!(
        "  feature range:  [{:.4}, {:.4}], mean {:.4}",
        summary.min, summary.max, summary.mean
    ));
    out(format!(
        "  marginal skew:  {:+.2} ({})",
        summary.skew_indicator,
        if summary.is_skewed() {
            "skewed — equalized quantization recommended"
        } else {
            "roughly symmetric"
        }
    ));
    let hint = lookhd_datasets::summary::suggest_config(&summary);
    out(format!(
        "  suggested:      --q {} --r {} --dim {}{}",
        hint.q,
        hint.r,
        hint.dim,
        if hint.equalized {
            " (equalized quantization, the default)"
        } else {
            " --linear"
        }
    ));
    Ok(())
}

/// Serves a persisted model (`LKS1`, `HDC1`, or `LKC1`) over TCP until a
/// shutdown frame arrives (e.g. `loadgen --shutdown`).
fn serve(args: &Args) -> Result<(), String> {
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let online = args.switch("online");
    // Online training folds feedback into a StreamingTrainer seeded from
    // the classifier's own encoder, so it needs the full LKS1 artifact
    // (the encoder-less HDC1/LKC1 formats cannot re-train).
    let full_classifier = if online || kernel_spec(args)?.is_some() {
        let bytes = fs::read(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
        if bytes.get(..4) != Some(b"LKS1".as_slice()) {
            let need = if online {
                "--online"
            } else {
                "--kernel override"
            };
            return Err(format!("{need} requires a full LKS1 model artifact"));
        }
        let mut clf = LookHdClassifier::from_bytes(&bytes)
            .map_err(|e| format!("loading {model_path}: {e}"))?;
        if let Some(spec) = kernel_spec(args)? {
            clf.set_kernel(&spec)
                .map_err(|e| format!("rebuilding kernel: {e}"))?;
        }
        Some(clf)
    } else {
        None
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:4100");
    let workers = args.get_or("threads", 1usize).map_err(|e| e.to_string())?;
    let max_batch = args
        .get_or("max-batch", 16usize)
        .map_err(|e| e.to_string())?;
    let queue_cap = args
        .get_or("queue-cap", 1024usize)
        .map_err(|e| e.to_string())?;
    let timeout_ms = args
        .get_or("timeout-ms", 1000u64)
        .map_err(|e| e.to_string())?;
    let reactors = args.get_or("reactors", 1usize).map_err(|e| e.to_string())?;
    let max_conns = args
        .get_or("max-conns", 8192usize)
        .map_err(|e| e.to_string())?;
    let admin_addr = args.get("admin-addr").map(str::to_owned);
    let metrics_interval_ms = args
        .get_or("metrics-interval", 0u64)
        .map_err(|e| e.to_string())?;
    let refresh_after = args
        .get_or("refresh-after", 0usize)
        .map_err(|e| e.to_string())?;
    let drift_threshold = args
        .get_or("drift-threshold", 0.25f64)
        .map_err(|e| e.to_string())?;
    if !online && (refresh_after != 0 || args.get("drift-threshold").is_some()) {
        return Err("--refresh-after/--drift-threshold require --online".to_owned());
    }
    let slo_p99_ms = args.get("slo-p99-ms");
    let slo_error_rate = args.get("slo-error-rate");
    if (slo_p99_ms.is_some() || slo_error_rate.is_some()) && admin_addr.is_none() {
        return Err(
            "--slo-p99-ms/--slo-error-rate require --admin-addr (they gate /healthz and /slo.json)"
                .to_owned(),
        );
    }
    let mut slo = lookhd_serve::SloConfig::new();
    if slo_p99_ms.is_some() {
        slo = slo.with_p99_ms(
            args.get_or("slo-p99-ms", 0.0f64)
                .map_err(|e| e.to_string())?,
        );
    }
    if slo_error_rate.is_some() {
        slo = slo.with_error_rate(
            args.get_or("slo-error-rate", 0.0f64)
                .map_err(|e| e.to_string())?,
        );
    }
    let config = lookhd_serve::ServeConfig::new()
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_queue_cap(queue_cap)
        .with_timeout(std::time::Duration::from_millis(timeout_ms))
        .with_reactors(reactors)
        .with_max_conns(max_conns)
        .with_slo(slo);

    // The admin endpoint is only useful with live data behind it: enable
    // the metrics registry and the trace ring before the server starts,
    // so its pre-interned dimensional handles (reactor/worker/model
    // version labels) record from the first request. The listener itself
    // binds after the server: it carries the server's health state.
    if admin_addr.is_some() {
        obs::set_enabled(true);
        obs::trace::set_enabled(true);
    }
    // The periodic flusher needs a file to flush to: it rides --metrics.
    let flusher = match (args.get("metrics"), metrics_interval_ms) {
        (Some(path), ms) if ms > 0 => Some(lookhd_serve::MetricsFlusher::start(
            std::path::PathBuf::from(path),
            std::time::Duration::from_millis(ms),
        )),
        (None, ms) if ms > 0 => {
            return Err("--metrics-interval requires --metrics FILE".to_owned());
        }
        _ => None,
    };

    let (n_classes, handle) = if online {
        let clf = full_classifier.expect("online requires the full classifier");
        let n_classes = clf.num_classes();
        let online_config = lookhd_serve::OnlineConfig::new()
            .with_auto_refresh_min_folds(refresh_after)
            .with_drift_threshold(drift_threshold);
        let handle = lookhd_serve::start_online(addr, clf, config, online_config)
            .map_err(|e| format!("binding {addr}: {e}"))?;
        (n_classes, handle)
    } else {
        let model = match full_classifier {
            Some(clf) => std::sync::Arc::new(clf) as lookhd_serve::SharedClassifier,
            None => lookhd_serve::load_classifier(std::path::Path::new(model_path))
                .map_err(|e| format!("loading {model_path}: {e}"))?,
        };
        let n_classes = model.num_classes();
        let handle =
            lookhd_serve::start(addr, model, config).map_err(|e| format!("binding {addr}: {e}"))?;
        (n_classes, handle)
    };
    let admin = match &admin_addr {
        Some(admin_addr) => {
            let options = lookhd_serve::AdminOptions::new().with_health(handle.health());
            match lookhd_serve::start_admin_with(admin_addr.as_str(), options) {
                Ok(admin) => Some(admin),
                Err(e) => {
                    // A serve command that cannot expose the telemetry it
                    // was asked for must not keep serving silently.
                    handle.shutdown();
                    handle.join();
                    return Err(format!("binding admin {admin_addr}: {e}"));
                }
            }
        }
        None => None,
    };
    let workers_label = if workers == 0 {
        "auto".to_owned()
    } else {
        workers.to_string()
    };
    let online_label = if online {
        let gate = if refresh_after == 0 {
            "manual refresh only".to_owned()
        } else {
            format!("auto-refresh after {refresh_after} folds, drift ≥ {drift_threshold}")
        };
        format!("; online training on ({gate})")
    } else {
        String::new()
    };
    out(format!(
        "serving on {} ({} classes; workers {workers_label}, max batch {max_batch}, \
         queue cap {queue_cap}, timeout {timeout_ms} ms, reactors {reactors}, \
         max conns {max_conns}{online_label})",
        handle.addr(),
        n_classes,
    ));
    if let Some(admin) = &admin {
        out(format!(
            "admin on {} (/metrics.json /metrics /trace.json /healthz /slo.json)",
            admin.addr()
        ));
    }
    out("send a shutdown frame (e.g. loadgen --shutdown) to stop");
    handle.join();
    if let Some(admin) = admin {
        admin.shutdown();
        admin.join();
    }
    if let Some(flusher) = flusher {
        flusher
            .stop()
            .map_err(|e| format!("final metrics flush: {e}"))?;
    }
    out("server drained and stopped");
    Ok(())
}

fn estimate(args: &Args) -> Result<(), String> {
    let clf = load_classifier(args)?;
    let samples = args
        .get_or("samples", 1000usize)
        .map_err(|e| e.to_string())?;
    let layout = clf.encoder().layout();
    let shape = WorkloadShape {
        n_features: layout.n_features(),
        q: layout.q(),
        dim: clf.model().dim(),
        n_classes: clf.compressed().n_classes(),
        r: layout.r(),
        max_classes_per_vector: clf.compressed().config().max_classes_per_vector,
        train_samples: samples,
        retrain_epochs: 0,
        avg_updates_per_epoch: 0,
    };
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    out("estimated deployment cost (structural models, see DESIGN.md):");
    out(format!(
        "  per query  — ARM A53: {}   KC705 FPGA: {}",
        cpu.execute(&shape.lookhd_inference()),
        fpga.execute_as(&shape.lookhd_inference(), FpgaPhase::LookHdInference)
    ));
    out(format!(
        "  initial training ({samples} samples) — ARM A53: {}   KC705 FPGA: {}",
        cpu.execute(&shape.lookhd_initial_training()),
        fpga.initial_training_cost(&shape, FpgaPhase::LookHdTraining)
    ));
    out(format!(
        "  chunk tables fit KC705 BRAM: {}",
        if fpga.tables_fit(&shape) { "yes" } else { "NO" }
    ));
    Ok(())
}
