//! Hand-rolled flag parsing (keeps the CLI dependency-free).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: positional subcommand plus `--flag value` /
/// `--switch` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Errors produced while parsing or validating flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared at an unexpected position or twice.
    Malformed(String),
    /// A required flag was missing.
    Missing(&'static str),
    /// A flag's value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed arguments: {what}"),
            Self::Missing(flag) => write!(f, "missing required flag --{flag}"),
            Self::BadValue { flag, message } => write!(f, "bad value for --{flag}: {message}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). The first
    /// non-flag token is the subcommand; every `--name` either consumes
    /// the next token as its value or, at the end / before another flag,
    /// acts as a boolean switch.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Malformed`] for repeated flags or stray
    /// positional tokens.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let tokens: Vec<String> = raw.into_iter().collect();
        let mut args = Self::default();
        let mut i = 0usize;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError::Malformed("empty flag name".into()));
                }
                let next_is_value = tokens
                    .get(i + 1)
                    .map(|t| !t.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    if args
                        .values
                        .insert(name.to_owned(), tokens[i + 1].clone())
                        .is_some()
                    {
                        return Err(ArgError::Malformed(format!("--{name} given twice")));
                    }
                    i += 2;
                } else {
                    if args.switches.contains(&name.to_owned()) {
                        return Err(ArgError::Malformed(format!("--{name} given twice")));
                    }
                    args.switches.push(name.to_owned());
                    i += 1;
                }
            } else if args.subcommand.is_none() {
                args.subcommand = Some(token.clone());
                i += 1;
            } else {
                return Err(ArgError::Malformed(format!(
                    "unexpected positional `{token}`"
                )));
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Missing`] when absent.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or(ArgError::Missing(flag))
    }

    /// An optional string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.values.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| ArgError::BadValue {
                flag: flag.to_owned(),
                message: e.to_string(),
            }),
        }
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_subcommand_flags_and_switches() {
        let a = parse(&["train", "--data", "x.csv", "--dim", "512", "--fast"]).unwrap();
        assert_eq!(a.subcommand(), Some("train"));
        assert_eq!(a.require("data").unwrap(), "x.csv");
        assert_eq!(a.get_or("dim", 0usize).unwrap(), 512);
        assert!(a.switch("fast"));
        assert!(!a.switch("slow"));
        assert_eq!(a.get_or("epochs", 10usize).unwrap(), 10);
    }

    #[test]
    fn reports_missing_and_bad_values() {
        let a = parse(&["train", "--dim", "abc"]).unwrap();
        assert_eq!(a.require("data"), Err(ArgError::Missing("data")));
        assert!(matches!(
            a.get_or("dim", 0usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn rejects_duplicates_and_strays() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
        assert!(parse(&["x", "--f", "--f"]).is_err());
        assert!(parse(&["x", "y"]).is_err());
        assert!(parse(&["x", "--"]).is_err());
    }

    #[test]
    fn optional_get_returns_none_when_absent() {
        let a = parse(&["x", "--name", "v"]).unwrap();
        assert_eq!(a.get("name"), Some("v"));
        assert_eq!(a.get("other"), None);
    }

    #[test]
    fn flag_before_flag_is_a_switch() {
        let a = parse(&["run", "--verbose", "--data", "d.csv"]).unwrap();
        assert!(a.switch("verbose"));
        assert_eq!(a.require("data").unwrap(), "d.csv");
    }

    #[test]
    fn errors_display_cleanly() {
        assert!(ArgError::Missing("data").to_string().contains("--data"));
        assert!(ArgError::Malformed("x".into()).to_string().contains('x'));
    }
}
