//! Bit-exact verification of the emulated datapaths against the software
//! reference implementations.
//!
//! The contract of the §V hardware is that, at the planned widths, it
//! computes *exactly* what the algorithm specifies. These routines run the
//! fixed-point units over real encoders/models and diff every output
//! element against the `lookhd` reference, reporting both mismatches and
//! overflow events (a zero-overflow, zero-mismatch run is a width-
//! sufficiency proof for that workload).

use hdc::hv::DenseHv;
use hdc::{HdcError, Result};
use lookhd::encoder::LookupEncoder;
use lookhd::trainer::CounterTrainer;
use lookhd::CompressedModel;

use crate::datapath::{CounterFile, SearchUnit, WeightedAccumulator, WidthPlan};

/// Outcome of a datapath verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerificationReport {
    /// Output elements compared.
    pub checked: usize,
    /// Elements where hardware and software disagreed.
    pub mismatches: usize,
    /// Overflow events across all emulated units.
    pub overflows: u64,
}

impl VerificationReport {
    /// True when the datapath reproduced the reference bit-exactly with no
    /// overflow.
    pub fn is_bit_exact(&self) -> bool {
        self.mismatches == 0 && self.overflows == 0
    }
}

/// Upper bound on emulated counter rows per chunk (keeps verification
/// runs to small, hardware-plausible configurations).
pub const MAX_EMULATED_ROWS: usize = 1 << 20;

/// Emulates the Fig. 10 training datapath (counter files + weighted
/// accumulation + position-key negation) and compares the resulting class
/// hypervectors against [`CounterTrainer::fit`].
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] when a chunk table exceeds
/// [`MAX_EMULATED_ROWS`], plus any reference-pipeline error.
pub fn verify_training_datapath(
    encoder: &LookupEncoder,
    features: &[Vec<f64>],
    labels: &[usize],
    n_classes: usize,
    plan: &WidthPlan,
) -> Result<VerificationReport> {
    let reference = CounterTrainer::fit(encoder, features, labels, n_classes)?;
    let layout = *encoder.layout();
    let d = reference.dim();
    for chunk in 0..layout.n_chunks() {
        if layout.table_rows(chunk) > MAX_EMULATED_ROWS {
            return Err(HdcError::invalid_config(
                "r",
                format!(
                    "chunk {chunk} has {} rows; emulation is capped at {MAX_EMULATED_ROWS}",
                    layout.table_rows(chunk)
                ),
            ));
        }
    }
    let mut report = VerificationReport {
        checked: 0,
        mismatches: 0,
        overflows: 0,
    };
    for class in 0..n_classes {
        // Fig. 10-D: one counter file per chunk.
        let mut files: Vec<CounterFile> = (0..layout.n_chunks())
            .map(|c| CounterFile::new(layout.table_rows(c), plan.counter))
            .collect();
        for (x, &y) in features.iter().zip(labels) {
            if y != class {
                continue;
            }
            let addrs = encoder.addresses(x)?;
            for (chunk, &addr) in addrs.iter().enumerate() {
                files[chunk].increment(addr as usize);
            }
        }
        // Fig. 10 E–F: weighted accumulation with key negation.
        let mut acc = WeightedAccumulator::new(d, plan.class_accumulator, plan.table_element);
        for (chunk, file) in files.iter().enumerate() {
            let key = encoder.positions().key(chunk);
            for addr in 0..layout.table_rows(chunk) {
                let count = file.read(addr);
                if count == 0 {
                    continue;
                }
                let row = encoder.lut().row(chunk, addr as u64);
                for dim in 0..d {
                    acc.accumulate(dim, count, row.get(dim) as i64, key.is_negative(dim));
                }
            }
        }
        for file in &files {
            report.overflows += file.overflows();
        }
        report.overflows += acc.overflows();
        // Diff against the reference class hypervector.
        let expected = reference.class(class);
        for (dim, (&hw, &sw)) in acc.values().iter().zip(expected.as_slice()).enumerate() {
            report.checked += 1;
            if hw != sw as i64 {
                report.mismatches += 1;
                let _ = dim;
            }
        }
    }
    Ok(report)
}

/// Result of a search-datapath verification.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchVerification {
    /// Per-element report over the score vector.
    pub report: VerificationReport,
    /// Whether the hardware argmax matched the reference prediction.
    pub prediction_matches: bool,
}

/// Emulates the Fig. 11 compressed associative search (shared products +
/// key-controlled accumulation) and compares scores and the winning class
/// against [`CompressedModel::scores`].
///
/// Only valid for models compressed without decorrelation: the whitening
/// projection is a floating-point front-end the integer datapath does not
/// implement (the paper's hardware likewise stores plain integer models).
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] for a decorrelated model and
/// propagates reference-model errors.
pub fn verify_search_datapath(
    model: &CompressedModel,
    query: &DenseHv,
    plan: &WidthPlan,
) -> Result<SearchVerification> {
    if model.config().decorrelate {
        return Err(HdcError::invalid_config(
            "decorrelate",
            "the integer search datapath verifies non-decorrelated models only",
        ));
    }
    let reference_scores = model.scores(query)?;
    let reference_prediction = model.predict(query)?;
    let k = model.n_classes();
    let d = model.dim();
    // Emulate per group: the shared product vector only multiplies once
    // per combined vector, exactly as in Fig. 11.
    let mut hw_scores = vec![0i64; k];
    let mut overflows = 0u64;
    let group_of = |label: usize| label / model.config().max_classes_per_vector;
    for g in 0..model.n_vectors() {
        let members: Vec<usize> = (0..k).filter(|&label| group_of(label) == g).collect();
        let mut unit = SearchUnit::new(members.len(), plan.search_accumulator);
        let combined = model.combined(g);
        for dim in 0..d {
            let keys: Vec<bool> = members
                .iter()
                .map(|&label| model.key(label).is_negative(dim))
                .collect();
            unit.consume(query.get(dim) as i64, combined.get(dim) as i64, &keys);
        }
        overflows += unit.overflows();
        for (slot, &label) in unit.scores().iter().zip(&members) {
            hw_scores[label] = *slot;
        }
    }
    let mut report = VerificationReport {
        checked: 0,
        mismatches: 0,
        overflows,
    };
    for (&hw, &sw) in hw_scores.iter().zip(&reference_scores) {
        report.checked += 1;
        if (hw as f64 - sw).abs() > 0.5 {
            report.mismatches += 1;
        }
    }
    let hw_prediction = hw_scores
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(SearchVerification {
        report,
        prediction_matches: hw_prediction == reference_prediction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Width;
    use hdc::levels::{LevelMemory, LevelScheme};
    use hdc::quantize::{Quantization, Quantizer};
    use lookhd::chunking::ChunkLayout;
    use lookhd::lut::TableMode;
    use lookhd::CompressionConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(
        n: usize,
        q: usize,
        r: usize,
        d: usize,
        samples: usize,
        k: usize,
        seed: u64,
    ) -> (LookupEncoder, Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(d, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &values, q).unwrap();
        let layout = ChunkLayout::new(n, r, q).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, seed).unwrap();
        let xs: Vec<Vec<f64>> = (0..samples)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys: Vec<usize> = (0..samples).map(|i| i % k).collect();
        (encoder, xs, ys)
    }

    #[test]
    fn training_datapath_is_bit_exact_at_planned_widths() {
        let (encoder, xs, ys) = setup(12, 2, 3, 128, 30, 3, 1);
        let plan = WidthPlan::derive(3, 12, 128, 10, 1 << 10);
        let report = verify_training_datapath(&encoder, &xs, &ys, 3, &plan).unwrap();
        assert!(report.is_bit_exact(), "{report:?}");
        assert_eq!(report.checked, 3 * 128);
    }

    #[test]
    fn starved_counter_width_is_detected() {
        let (encoder, xs, ys) = setup(12, 2, 3, 64, 40, 1, 2);
        // All 40 samples hit one class; a 3-bit counter saturates at 3.
        let mut plan = WidthPlan::derive(3, 12, 64, 40, 1 << 10);
        plan.counter = Width::new(3);
        let report = verify_training_datapath(&encoder, &xs, &ys, 1, &plan).unwrap();
        assert!(report.overflows > 0, "saturation must be visible");
        assert!(
            report.mismatches > 0,
            "saturated counters must change outputs"
        );
    }

    #[test]
    fn search_datapath_is_bit_exact_and_predicts_identically() {
        let mut rng = StdRng::seed_from_u64(3);
        let classes: Vec<DenseHv> = (0..5)
            .map(|_| DenseHv::from_vec((0..256).map(|_| rng.gen_range(-20..=20)).collect()))
            .collect();
        let model = hdc::model::ClassModel::from_classes(classes).unwrap();
        let compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        let plan = WidthPlan::derive(5, 256, 256, 10, 25_000);
        for label in 0..5 {
            let query = model.class(label).clone();
            let v = verify_search_datapath(&compressed, &query, &plan).unwrap();
            assert!(v.report.is_bit_exact(), "class {label}: {:?}", v.report);
            assert!(v.prediction_matches, "class {label}");
        }
    }

    #[test]
    fn decorrelated_models_are_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let classes: Vec<DenseHv> = (0..3)
            .map(|_| DenseHv::from_vec((0..64).map(|_| rng.gen_range(-5..=5)).collect()))
            .collect();
        let model = hdc::model::ClassModel::from_classes(classes).unwrap();
        let compressed = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        let plan = WidthPlan::derive(5, 64, 64, 10, 100);
        let query = DenseHv::zeros(64);
        assert!(verify_search_datapath(&compressed, &query, &plan).is_err());
    }

    #[test]
    fn narrow_search_width_loses_bit_exactness() {
        let mut rng = StdRng::seed_from_u64(5);
        let classes: Vec<DenseHv> = (0..2)
            .map(|_| DenseHv::from_vec((0..256).map(|_| rng.gen_range(-30..=30)).collect()))
            .collect();
        let model = hdc::model::ClassModel::from_classes(classes).unwrap();
        let compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        let mut plan = WidthPlan::derive(5, 256, 256, 10, 30_000);
        plan.search_accumulator = Width::new(10);
        let query = model.class(0).clone();
        let v = verify_search_datapath(&compressed, &query, &plan).unwrap();
        assert!(v.report.overflows > 0);
    }

    #[test]
    fn oversized_tables_are_rejected() {
        // 8^8 = 16.7M rows per chunk: over the emulation cap (the software
        // side handles it via the on-the-fly table mode).
        let mut rng = StdRng::seed_from_u64(6);
        let levels = LevelMemory::generate(32, 8, LevelScheme::RandomFlips, &mut rng).unwrap();
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &values, 8).unwrap();
        let layout = ChunkLayout::new(24, 8, 8).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 6).unwrap();
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..24).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys = vec![0usize, 1, 0, 1];
        let plan = WidthPlan::derive(8, 24, 32, 2, 100);
        assert!(verify_training_datapath(&encoder, &xs, &ys, 2, &plan).is_err());
    }
}
