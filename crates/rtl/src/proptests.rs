//! Property-based laws of the fixed-width arithmetic units.

#![cfg(test)]

use proptest::prelude::*;

use crate::fixed::{Alu, OverflowMode, Width};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Saturating results always stay in range and are exact whenever the
    /// true result fits.
    #[test]
    fn saturate_stays_in_range(bits in 2u32..40, a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let width = Width::new(bits);
        let mut alu = Alu::new(width, OverflowMode::Saturate);
        let sum = alu.add(a, b);
        prop_assert!(width.fits(sum));
        if width.fits(a + b) {
            prop_assert_eq!(sum, a + b);
        }
        let product = alu.mul(a, b);
        prop_assert!(width.fits(product));
        if width.fits(a.saturating_mul(b)) {
            prop_assert_eq!(product, a * b);
        }
    }

    /// Wrapping arithmetic is a ring homomorphism: results agree with the
    /// wide result modulo 2^bits.
    #[test]
    fn wrap_is_modular(bits in 2u32..32, a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let width = Width::new(bits);
        let mut alu = Alu::new(width, OverflowMode::Wrap);
        let span = 1i128 << bits;
        let expect = |v: i64| -> i64 {
            let offset = 1i128 << (bits - 1);
            (((v as i128 + offset).rem_euclid(span)) - offset) as i64
        };
        prop_assert_eq!(alu.add(a, b), expect(a + b));
        prop_assert_eq!(alu.sub(a, b), expect(a - b));
        prop_assert_eq!(alu.mul(a, b), expect(a * b));
    }

    /// Width::required_for is tight: the value fits at the returned width
    /// but (when possible) not one bit below.
    #[test]
    fn required_width_is_tight(lo in -1_000_000i64..0, hi in 0i64..1_000_000) {
        let width = Width::required_for(lo, hi);
        prop_assert!(width.fits(lo) && width.fits(hi));
        if width.bits() > 2 {
            let narrower = Width::new(width.bits() - 1);
            prop_assert!(!narrower.fits(lo) || !narrower.fits(hi));
        }
    }

    /// Negation blocks are involutive away from the minimum value.
    #[test]
    fn negation_is_involutive(bits in 3u32..40, v in -1000i64..1000) {
        let width = Width::new(bits);
        prop_assume!(width.fits(v) && width.fits(-v));
        let mut alu = Alu::new(width, OverflowMode::Saturate);
        let once = alu.negate_if(v, true);
        let twice = alu.negate_if(once, true);
        prop_assert_eq!(twice, v);
        prop_assert!(alu.is_exact());
    }
}
