//! # lookhd-rtl — fixed-point datapath emulation and verification
//!
//! The paper's §V hardware fixes every datapath width at synthesis time:
//! chunk-table elements carry `⌈log2(2r+1)⌉` bits, counters are narrow
//! registers, adder trees and DSP accumulators have finite precision. This
//! crate answers the question an RTL engineer would ask of the algorithm
//! teams: *which widths are sufficient, and what breaks when they are not?*
//!
//! * [`fixed`] — width-checked arithmetic units ([`fixed::Alu`]) with
//!   saturating/wrapping overflow semantics and overflow accounting;
//! * [`datapath`] — emulated blocks of Figs. 10/11: quantizer comparator
//!   banks, counter register files, weighted accumulation with position-key
//!   negation, and the compressed associative search, plus
//!   [`datapath::WidthPlan`] deriving sufficient widths from the workload;
//! * [`verify`] — end-to-end bit-exactness proofs: the emulated training
//!   and search datapaths are diffed element-by-element against the
//!   `lookhd` software reference; zero mismatches + zero overflows at the
//!   planned widths is a width-sufficiency certificate for that workload.
//!
//! ## Example
//!
//! ```
//! use lookhd_rtl::datapath::WidthPlan;
//!
//! // SPEECH-like geometry: r = 5, n = 617, D = 2000, 240 samples/class.
//! let plan = WidthPlan::derive(5, 617, 2000, 240, 1 << 14);
//! assert_eq!(plan.table_element.bits(), 4); // the paper's "log2 r bits"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datapath;
pub mod fixed;
#[cfg(test)]
mod proptests;
pub mod verify;

pub use datapath::WidthPlan;
pub use fixed::{Alu, OverflowMode, Width};
pub use verify::{verify_search_datapath, verify_training_datapath, VerificationReport};
