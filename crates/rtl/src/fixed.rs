//! Fixed-width integer arithmetic with overflow accounting.
//!
//! The §V hardware fixes every datapath width at synthesis time: table
//! elements carry `⌈log2(2r+1)⌉` bits, counters are narrow registers,
//! adder trees grow one bit per level. [`Alu`] evaluates integer
//! expressions under such a width budget, either saturating (the usual DSP
//! configuration) or wrapping (plain adders), and counts every overflow so
//! verification can tell "width is sufficient" from "silently wrong".

use std::fmt;

/// Overflow behaviour of a hardware unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverflowMode {
    /// Clamp to the representable range (DSP saturation logic).
    Saturate,
    /// Wrap modulo `2^bits` (plain binary adders).
    Wrap,
}

/// A signed fixed-width integer format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Width {
    bits: u32,
}

impl Width {
    /// A signed two's-complement format with `bits` total bits.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 63`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (2..=63).contains(&bits),
            "width must be 2..=63 bits, got {bits}"
        );
        Self { bits }
    }

    /// The bit count.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable value, `2^{bits-1} − 1`.
    pub fn max(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Smallest representable value, `−2^{bits-1}`.
    pub fn min(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Whether `v` fits without overflow.
    pub fn fits(&self, v: i64) -> bool {
        v >= self.min() && v <= self.max()
    }

    /// Minimal signed width that can hold every value in `[lo, hi]`.
    pub fn required_for(lo: i64, hi: i64) -> Self {
        for bits in 2..=63u32 {
            let w = Width { bits };
            if w.fits(lo) && w.fits(hi) {
                return w;
            }
        }
        Width { bits: 63 }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits)
    }
}

/// A width-checked arithmetic unit that records overflow events.
#[derive(Debug, Clone)]
pub struct Alu {
    width: Width,
    mode: OverflowMode,
    overflows: u64,
}

impl Alu {
    /// Creates a unit with the given format and overflow behaviour.
    pub fn new(width: Width, mode: OverflowMode) -> Self {
        Self {
            width,
            mode,
            overflows: 0,
        }
    }

    /// The unit's format.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Overflow events observed so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// True when no overflow has occurred.
    pub fn is_exact(&self) -> bool {
        self.overflows == 0
    }

    /// Coerces a value into the format, applying the overflow mode.
    pub fn coerce(&mut self, v: i64) -> i64 {
        if self.width.fits(v) {
            return v;
        }
        self.overflows += 1;
        match self.mode {
            OverflowMode::Saturate => v.clamp(self.width.min(), self.width.max()),
            OverflowMode::Wrap => {
                let span = 1i128 << self.width.bits();
                let offset = 1i128 << (self.width.bits() - 1);
                (((v as i128 + offset).rem_euclid(span)) - offset) as i64
            }
        }
    }

    /// `a + b` in this format.
    pub fn add(&mut self, a: i64, b: i64) -> i64 {
        self.coerce(a.saturating_add(b))
    }

    /// `a − b` in this format.
    pub fn sub(&mut self, a: i64, b: i64) -> i64 {
        self.coerce(a.saturating_sub(b))
    }

    /// `a · b` in this format.
    pub fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.coerce(a.saturating_mul(b))
    }

    /// Conditional negation (the §V "negation block" — exact by
    /// construction in two's complement unless negating the minimum).
    pub fn negate_if(&mut self, v: i64, negate: bool) -> i64 {
        if negate {
            self.coerce(-v)
        } else {
            self.coerce(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bounds() {
        let w = Width::new(4);
        assert_eq!(w.max(), 7);
        assert_eq!(w.min(), -8);
        assert!(w.fits(7) && w.fits(-8));
        assert!(!w.fits(8) && !w.fits(-9));
        assert_eq!(format!("{w}"), "i4");
    }

    #[test]
    fn required_width_is_minimal() {
        assert_eq!(Width::required_for(-1, 1).bits(), 2);
        assert_eq!(Width::required_for(-5, 5).bits(), 4);
        assert_eq!(Width::required_for(0, 127).bits(), 8);
        assert_eq!(Width::required_for(-128, 127).bits(), 8);
        assert_eq!(Width::required_for(-129, 0).bits(), 9);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_tiny_widths() {
        let _ = Width::new(1);
    }

    #[test]
    fn saturation_clamps_and_counts() {
        let mut alu = Alu::new(Width::new(4), OverflowMode::Saturate);
        assert_eq!(alu.add(7, 5), 7);
        assert_eq!(alu.sub(-8, 3), -8);
        assert_eq!(alu.overflows(), 2);
        assert!(!alu.is_exact());
        assert_eq!(alu.add(3, 2), 5);
        assert_eq!(alu.overflows(), 2);
    }

    #[test]
    fn wrapping_matches_twos_complement() {
        let mut alu = Alu::new(Width::new(4), OverflowMode::Wrap);
        assert_eq!(alu.add(7, 1), -8); // 8 wraps to -8 in i4
        assert_eq!(alu.add(-8, -1), 7);
        assert_eq!(alu.mul(4, 4), 0); // 16 ≡ 0 (mod 16)
        assert_eq!(alu.overflows(), 3);
    }

    #[test]
    fn negation_block_is_exact_except_at_min() {
        let mut alu = Alu::new(Width::new(4), OverflowMode::Saturate);
        assert_eq!(alu.negate_if(5, true), -5);
        assert_eq!(alu.negate_if(5, false), 5);
        assert!(alu.is_exact());
        assert_eq!(alu.negate_if(-8, true), 7); // |min| saturates
        assert_eq!(alu.overflows(), 1);
    }

    #[test]
    fn exact_values_pass_through_unchanged() {
        let mut alu = Alu::new(Width::new(16), OverflowMode::Wrap);
        for v in [-32768i64, -1, 0, 1, 32767] {
            assert_eq!(alu.coerce(v), v);
        }
        assert!(alu.is_exact());
    }
}
