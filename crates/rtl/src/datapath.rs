//! Fixed-point emulation of the §V LookHD datapaths.
//!
//! Each block of Figs. 10/11 gets an emulated unit with explicit widths:
//!
//! * [`QuantizerUnit`] — subtract/abs/min comparator bank (Fig. 10 A–B);
//! * [`CounterFile`] — per-chunk occurrence counters (Fig. 10 D);
//! * [`WeightedAccumulator`] — counter × table-element multiply-accumulate
//!   plus position-key negation (Fig. 10 E–F);
//! * [`SearchUnit`] — the compressed associative search: shared products,
//!   key-controlled add/sub accumulation (Fig. 11 D–G).
//!
//! [`WidthPlan`] derives sufficient widths from the workload's geometry;
//! `crate::verify` then proves the emulated datapath bit-exact against the
//! software reference at those widths.

use crate::fixed::{Alu, OverflowMode, Width};

/// Widths for every unit of the LookHD design, with the §V sizing rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthPlan {
    /// Pre-stored chunk-table elements: values span `[-r, r]`.
    pub table_element: Width,
    /// Chunk counters: must count up to the per-class sample budget.
    pub counter: Width,
    /// Class-hypervector accumulators: bounded by `n` per dimension after
    /// full aggregation (every feature contributes ±1).
    pub class_accumulator: Width,
    /// Query accumulators (same bound as class, per encoded query).
    pub query_accumulator: Width,
    /// Search accumulator: dot products up to `D · |H| · |C|`.
    pub search_accumulator: Width,
}

impl WidthPlan {
    /// Derives sufficient widths for a workload: chunk size `r`, feature
    /// count `n`, dimensionality `d`, per-class training samples
    /// `samples_per_class`, and the largest class-model magnitude
    /// `max_class_value` the trained model holds.
    pub fn derive(
        r: usize,
        n: usize,
        d: usize,
        samples_per_class: usize,
        max_class_value: i64,
    ) -> Self {
        let table_element = Width::required_for(-(r as i64), r as i64);
        let counter = Width::required_for(0, samples_per_class as i64);
        // Each of the n features contributes ±1 to some dimension; the
        // weighted accumulation additionally scales by counters, bounded by
        // samples_per_class · r per table row and n · samples_per_class
        // per dimension overall.
        let class_bound = (n as i64) * (samples_per_class as i64);
        let class_accumulator = Width::required_for(-class_bound, class_bound);
        let query_bound = n as i64;
        let query_accumulator = Width::required_for(-query_bound, query_bound);
        let search_bound = (d as i64)
            .saturating_mul(query_bound)
            .saturating_mul(max_class_value.abs().max(1));
        let search_accumulator = Width::required_for(-search_bound, search_bound);
        Self {
            table_element,
            counter,
            class_accumulator,
            query_accumulator,
            search_accumulator,
        }
    }
}

/// The Fig. 10-A quantizer: subtract the input from every level boundary
/// and pick the level by comparator cascade. Works on integer millifeature
/// units so the hardware sees fixed-point inputs.
#[derive(Debug, Clone)]
pub struct QuantizerUnit {
    /// Interior boundaries in millifeature units, ascending.
    boundaries_milli: Vec<i64>,
    alu: Alu,
}

impl QuantizerUnit {
    /// Scale factor from `f64` feature values to integer units.
    pub const SCALE: f64 = 1000.0;

    /// Builds the comparator bank from `f64` boundaries.
    pub fn new(boundaries: &[f64], width: Width) -> Self {
        Self {
            boundaries_milli: boundaries
                .iter()
                .map(|&b| (b * Self::SCALE).round() as i64)
                .collect(),
            alu: Alu::new(width, OverflowMode::Saturate),
        }
    }

    /// Quantizes one feature value (already scaled to integer units) by
    /// counting boundaries `≤ x` — identical to the software rule.
    pub fn level(&mut self, x_milli: i64) -> usize {
        let mut level = 0usize;
        for &b in &self.boundaries_milli {
            // Hardware: sign of (x - b) selects the comparator output.
            let diff = self.alu.sub(x_milli, b);
            if diff >= 0 {
                level += 1;
            }
        }
        level.min(self.boundaries_milli.len())
    }

    /// Quantizes an `f64` feature value through the fixed-point path.
    pub fn level_f64(&mut self, x: f64) -> usize {
        self.level((x * Self::SCALE).round() as i64)
    }

    /// Overflow events in the comparator bank.
    pub fn overflows(&self) -> u64 {
        self.alu.overflows()
    }
}

/// The Fig. 10-D counter register file for one chunk.
#[derive(Debug, Clone)]
pub struct CounterFile {
    counters: Vec<i64>,
    alu: Alu,
}

impl CounterFile {
    /// Creates `rows` zeroed counters of the given width.
    pub fn new(rows: usize, width: Width) -> Self {
        Self {
            counters: vec![0; rows],
            alu: Alu::new(width, OverflowMode::Saturate),
        }
    }

    /// Read-modify-write increment of the addressed counter.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn increment(&mut self, addr: usize) {
        let v = self.counters[addr];
        self.counters[addr] = self.alu.add(v, 1);
    }

    /// The counter value at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: usize) -> i64 {
        self.counters[addr]
    }

    /// Overflow (saturation) events.
    pub fn overflows(&self) -> u64 {
        self.alu.overflows()
    }
}

/// The Fig. 10 E–F weighted accumulation: counter × table element products
/// accumulated per dimension, then bound with the position key through a
/// negation block.
#[derive(Debug, Clone)]
pub struct WeightedAccumulator {
    acc: Vec<i64>,
    alu: Alu,
    element_alu: Alu,
}

impl WeightedAccumulator {
    /// Creates a `d`-wide accumulator with the given accumulator and
    /// table-element widths.
    pub fn new(d: usize, accumulator: Width, element: Width) -> Self {
        Self {
            acc: vec![0; d],
            alu: Alu::new(accumulator, OverflowMode::Saturate),
            element_alu: Alu::new(element, OverflowMode::Saturate),
        }
    }

    /// Accumulates `count · element` into dimension `dim`, optionally
    /// negated by the position-key bit.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn accumulate(&mut self, dim: usize, count: i64, element: i64, negate: bool) {
        let element = self.element_alu.coerce(element);
        let product = self.alu.mul(count, element);
        let signed = self.alu.negate_if(product, negate);
        self.acc[dim] = self.alu.add(self.acc[dim], signed);
    }

    /// The accumulated vector.
    pub fn values(&self) -> &[i64] {
        &self.acc
    }

    /// Total overflow events across the accumulate and element paths.
    pub fn overflows(&self) -> u64 {
        self.alu.overflows() + self.element_alu.overflows()
    }
}

/// The Fig. 11 D–G compressed associative search: the shared per-dimension
/// products `H[d]·C[d]` feed `k` key-controlled add/sub accumulators.
#[derive(Debug, Clone)]
pub struct SearchUnit {
    scores: Vec<i64>,
    alu: Alu,
}

impl SearchUnit {
    /// Creates a `k`-class search unit with the given accumulator width.
    pub fn new(k: usize, width: Width) -> Self {
        Self {
            scores: vec![0; k],
            alu: Alu::new(width, OverflowMode::Saturate),
        }
    }

    /// Consumes one dimension: the shared product `h·c` is added to (or
    /// subtracted from) every class accumulator according to its key bit.
    pub fn consume(&mut self, h: i64, c: i64, key_negative: &[bool]) {
        let product = self.alu.mul(h, c);
        for (score, &neg) in self.scores.iter_mut().zip(key_negative) {
            let signed = if neg { -product } else { product };
            *score = self.alu.add(*score, signed);
        }
    }

    /// Final scores, one per class.
    pub fn scores(&self) -> &[i64] {
        &self.scores
    }

    /// The winning class (ties to the lowest index).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        for (i, &s) in self.scores.iter().enumerate() {
            if s > self.scores[best] {
                best = i;
            }
        }
        best
    }

    /// Overflow events.
    pub fn overflows(&self) -> u64 {
        self.alu.overflows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_plan_matches_paper_sizing() {
        // SPEECH-ish: r=5, n=617, D=2000, 240 samples/class.
        let plan = WidthPlan::derive(5, 617, 2000, 240, 1 << 14);
        // Table elements span [-5, 5] → 4 bits, the paper's "log2 r bits"
        // rounded to a signed format.
        assert_eq!(plan.table_element.bits(), 4);
        // Counters up to 240 → 9 bits signed.
        assert_eq!(plan.counter.bits(), 9);
        assert!(plan.class_accumulator.bits() >= 18);
        assert!(plan.search_accumulator.bits() > plan.class_accumulator.bits());
    }

    #[test]
    fn quantizer_matches_software_rule() {
        let boundaries = [0.25, 0.5, 0.75];
        let mut unit = QuantizerUnit::new(&boundaries, Width::new(16));
        assert_eq!(unit.level_f64(0.0), 0);
        assert_eq!(unit.level_f64(0.25), 1); // boundary goes up
        assert_eq!(unit.level_f64(0.6), 2);
        assert_eq!(unit.level_f64(0.9), 3);
        assert_eq!(unit.overflows(), 0);
    }

    #[test]
    fn counter_file_saturates_at_width() {
        let mut file = CounterFile::new(4, Width::new(3)); // max 3
        for _ in 0..10 {
            file.increment(1);
        }
        assert_eq!(file.read(1), 3);
        assert_eq!(file.read(0), 0);
        assert!(file.overflows() > 0);
    }

    #[test]
    fn weighted_accumulator_computes_signed_macs() {
        let mut acc = WeightedAccumulator::new(2, Width::new(16), Width::new(4));
        acc.accumulate(0, 3, 2, false); // +6
        acc.accumulate(0, 2, -1, true); // -(-2) = +2
        acc.accumulate(1, 5, 1, true); // -5
        assert_eq!(acc.values(), &[8, -5]);
        assert_eq!(acc.overflows(), 0);
    }

    #[test]
    fn search_unit_sign_flips_shared_products() {
        let mut unit = SearchUnit::new(2, Width::new(24));
        // dims: h = [2, -1], c = [3, 4]; keys: class0 = ++, class1 = +-
        unit.consume(2, 3, &[false, false]);
        unit.consume(-1, 4, &[false, true]);
        assert_eq!(unit.scores(), &[2, 10]); // [6-4, 6+4]
        assert_eq!(unit.argmax(), 1);
        assert_eq!(unit.overflows(), 0);
    }

    #[test]
    fn narrow_search_accumulator_overflows_visibly() {
        let mut unit = SearchUnit::new(1, Width::new(6)); // max 31
        for _ in 0..10 {
            unit.consume(3, 3, &[false]);
        }
        assert_eq!(unit.scores()[0], 31, "must saturate, not wrap silently");
        assert!(unit.overflows() > 0);
    }
}
