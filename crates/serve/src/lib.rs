//! # lookhd-serve — a batched TCP inference service for trained models
//!
//! The paper's deployment story is real-time classification on low-power
//! nodes; this crate is the serving half of that story: a std-only,
//! threaded TCP server that loads any persisted model (`LKS1`, `HDC1`,
//! `LKC1`) behind the object-safe [`hdc::Classifier`] trait and answers
//! length-prefixed binary predict requests, coalescing concurrent
//! requests into micro-batches.
//!
//! * [`wire`] — the hardened frame/message codec (magic + version +
//!   request id + payload; every length capped before allocation), with
//!   an optional v2 layout carrying a client trace id and the `LHF1`
//!   feedback family (feedback / refresh / version-stamped predict);
//! * [`server`] — accept loop, per-connection readers, the bounded
//!   request queue with backpressure and deadlines, batch workers,
//!   graceful shutdown, per-request tracing + model-quality telemetry
//!   when observability is on, and (via [`server::start_online`]) the
//!   online-training trainer thread with atomic model hot-swap;
//! * [`client`] — a small blocking client (used by the CLI tests and the
//!   `loadgen` benchmark driver);
//! * [`model`] — format sniffing and [`Classifier`] adapters for the
//!   encoder-less formats;
//! * [`admin`] — the std-only HTTP admin listener serving live snapshot
//!   JSON, Prometheus text (with dimensional labels and OpenMetrics
//!   tail exemplars), Chrome trace-event exports, and the SLO-aware
//!   `/healthz` + `/slo.json` routes;
//! * [`slo`] — multi-window SLO burn rates and the shared
//!   [`slo::HealthState`] behind the health routes;
//! * [`metrics`] — the periodic snapshot flusher for crash-safe
//!   `--metrics` files.
//!
//! The correctness contract, pinned by `tests/serve_differential.rs`:
//! responses are **bit-identical** to direct single-threaded
//! [`Classifier::predict`] calls on the same model, whatever the worker
//! count, batch size, or request interleaving.
//!
//! ```no_run
//! use std::sync::Arc;
//! use lookhd_serve::{client::Client, server, ServeConfig};
//! use hdc::{FitClassifier, Classifier};
//! use lookhd::{LookHdClassifier, LookHdConfig};
//!
//! let xs = vec![vec![0.1; 4], vec![0.9; 4]];
//! let ys = vec![0, 1];
//! let clf = LookHdClassifier::fit(&LookHdConfig::new().with_dim(128), &xs, &ys)?;
//! let handle = server::start("127.0.0.1:0", Arc::new(clf), ServeConfig::new())?;
//! let mut client = Client::connect(handle.addr())?;
//! let response = client.predict(1, &[0.9; 4]);
//! handle.shutdown();
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod client;
pub(crate) mod conn;
pub mod metrics;
pub mod model;
pub(crate) mod reactor;
pub mod server;
pub mod slo;
pub mod wire;

pub use admin::{
    http_get, http_get_status, start_admin, start_admin_with, AdminHandle, AdminOptions,
};
pub use client::Client;
pub use metrics::MetricsFlusher;
pub use model::{
    classifier_from_bytes, load_classifier, ModelSlot, SharedClassifier, VersionedModel,
};
pub use server::{start, start_online, OnlineConfig, ServeConfig, ServerHandle};
pub use slo::{Health, HealthState, SloAxis, SloConfig};
pub use wire::{ErrorCode, Request, Response, WireError};

/// Serializes every in-crate test that mutates the global obs/trace
/// state (admin routes, the flusher) so they cannot race each other.
#[cfg(test)]
pub(crate) static OBS_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn obs_test_guard() -> std::sync::MutexGuard<'static, ()> {
    OBS_TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
