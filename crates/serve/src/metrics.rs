//! Periodic snapshot flushing for long-lived servers.
//!
//! `lookhd --metrics out.json serve …` originally wrote its snapshot
//! once, after the server drained — so a crash, OOM-kill, or `kill -9`
//! lost every observation. The [`MetricsFlusher`] closes that hole: a
//! background thread rewrites the snapshot file every interval, and
//! [`MetricsFlusher::stop`] performs one final flush before joining.
//!
//! Each flush writes to `<path>.tmp` and renames it over `<path>`, so a
//! reader never sees a half-written file (rename is atomic on the same
//! filesystem, which a sibling tmp file guarantees).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running periodic flusher. Call [`MetricsFlusher::stop`] for the
/// final flush; dropping the handle abandons the thread (it keeps
/// flushing until the process exits, which is harmless but sloppy).
pub struct MetricsFlusher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl MetricsFlusher {
    /// Spawns a thread that writes [`obs::snapshot`] JSON to `path`
    /// every `interval` (clamped up to 10 ms so a zero interval cannot
    /// spin). The first write happens after one interval, not
    /// immediately — an empty snapshot at startup carries no signal.
    pub fn start(path: PathBuf, interval: Duration) -> Self {
        let interval = interval.max(Duration::from_millis(10));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread = {
            let stop = Arc::clone(&stop);
            let path = path.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &*stop;
                let mut stopped = lock.lock().expect("flusher lock poisoned");
                while !*stopped {
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, interval)
                        .expect("flusher lock poisoned");
                    stopped = guard;
                    if timeout.timed_out() && !*stopped {
                        // Flush errors are deliberately swallowed: a full
                        // disk must not take the inference path down, and
                        // the next tick retries anyway.
                        let _ = flush_snapshot(&path);
                    }
                }
            })
        };
        Self {
            stop,
            thread: Some(thread),
            path,
        }
    }

    /// Stops the flusher thread and writes one final snapshot, so the
    /// file always reflects the full run when the server exits
    /// gracefully.
    ///
    /// # Errors
    ///
    /// Returns the final flush's I/O error (the thread is joined either
    /// way).
    pub fn stop(mut self) -> io::Result<()> {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("flusher lock poisoned") = true;
        cv.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        flush_snapshot(&self.path)
    }
}

/// Writes the current snapshot JSON to `path` via a sibling tmp file +
/// atomic rename.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn flush_snapshot(path: &Path) -> io::Result<()> {
    let json = obs::snapshot().to_json();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flusher_writes_periodically_and_on_stop() {
        let _guard = crate::obs_test_guard();
        obs::set_enabled(true);
        obs::reset();
        obs::counter("flusher.test", 1);

        let dir = std::env::temp_dir().join(format!("lookhd-flusher-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");

        let flusher = MetricsFlusher::start(path.clone(), Duration::from_millis(20));
        // Wait for at least one periodic flush.
        let mut saw_periodic = false;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(10));
            if path.exists() {
                saw_periodic = true;
                break;
            }
        }
        assert!(saw_periodic, "no periodic flush within 1 s");

        obs::counter("flusher.test", 41);
        flusher.stop().unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"version\": 3"), "got: {json}");
        assert!(
            json.contains("{\"name\": \"flusher.test\", \"labels\": {}, \"value\": 42"),
            "got: {json}"
        );
        // The tmp file never survives a completed flush.
        assert!(!dir.join("metrics.json.tmp").exists());

        std::fs::remove_dir_all(&dir).unwrap();
        obs::set_enabled(false);
        obs::reset();
    }

    #[test]
    fn zero_interval_is_clamped_not_spinning() {
        let dir = std::env::temp_dir().join(format!("lookhd-flusher0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let flusher = MetricsFlusher::start(path, Duration::ZERO);
        std::thread::sleep(Duration::from_millis(30));
        flusher.stop().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
