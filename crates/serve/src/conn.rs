//! Per-connection state shared between the reactor and the batch
//! workers.
//!
//! A [`Conn`] owns the nonblocking `TcpStream` for its whole lifetime.
//! The reactor thread is the only reader; writers (batch workers and
//! the reactor's inline dispatch) all go through [`Conn::send`], which
//! serializes frames under the outbox lock:
//!
//! * **fast path** — the outbox is empty, so the frame is written
//!   straight to the socket. Under normal load this is the only path
//!   and responses never touch the reactor at all.
//! * **backlog path** — the socket would block (or older bytes are
//!   already backlogged), so the remainder is appended to the outbox
//!   and the owning reactor is asked to watch `EPOLLOUT` and flush.
//!
//! A client that stops reading while responses keep completing grows
//! its outbox until [`OUTBOX_CAP`] and is then condemned (tier-3 load
//! shedding, `serve.slow_client_drops`): the connection writes nothing
//! further and is torn down by its reactor.
//!
//! Teardown is reference-counted by work, not by `Arc`s: a connection
//! whose read side is finished ([`Conn::mark_read_shut`]) is closed as
//! soon as its last in-flight request has been answered and its outbox
//! has drained ([`Conn::is_reapable`]). Workers finishing the last
//! response nudge the reactor via [`ReactorQueue::check`] so the close
//! happens promptly instead of at the next unrelated wakeup.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::reactor::ReactorQueue;
use crate::wire::{self, Response};

/// Cap on buffered-but-unsent response bytes per connection. A client
/// that stops reading while its requests keep completing hits this cap
/// and is dropped rather than growing server memory without bound.
pub(crate) const OUTBOX_CAP: usize = 256 * 1024;

/// Result of a reactor-side outbox flush attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flush {
    /// Everything pending was written; `EPOLLOUT` interest can drop.
    Empty,
    /// The socket filled up again; keep `EPOLLOUT` interest.
    Pending,
    /// The transport failed or the connection was condemned; tear it
    /// down.
    Dead,
}

/// Pending response bytes not yet accepted by the kernel.
struct Outbox {
    /// Flat buffer of un-sent frame bytes; `pos` is the written prefix.
    buf: Vec<u8>,
    pos: usize,
    /// The owning reactor has been asked to watch `EPOLLOUT`.
    wants_flush: bool,
    /// Condemned: transport error or outbox overflow. All later writes
    /// are no-ops and the reactor tears the connection down.
    dead: bool,
}

impl Outbox {
    fn backlog(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// One live client connection, shared (via `Arc`) between the owning
/// reactor and every batch worker holding one of its requests.
pub(crate) struct Conn {
    /// The reactor-assigned epoll token.
    pub(crate) token: u64,
    stream: TcpStream,
    out: Mutex<Outbox>,
    /// Predict requests enqueued but not yet answered.
    inflight: AtomicUsize,
    /// The reactor stopped reading (EOF, framing damage, or shutdown).
    read_shut: AtomicBool,
    /// The owning reactor's command queue + waker.
    reactor: Arc<ReactorQueue>,
}

impl Conn {
    /// Wraps an accepted stream: nonblocking (readiness-driven) and
    /// nodelay (small response frames must not wait for ACKs).
    pub(crate) fn new(
        stream: TcpStream,
        token: u64,
        reactor: Arc<ReactorQueue>,
    ) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            token,
            stream,
            out: Mutex::new(Outbox {
                buf: Vec::new(),
                pos: 0,
                wants_flush: false,
                dead: false,
            }),
            inflight: AtomicUsize::new(0),
            read_shut: AtomicBool::new(false),
            reactor,
        })
    }

    /// The raw fd, for reactor registration only.
    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads from the socket (reactor thread only).
    pub(crate) fn read_into(&self, buf: &mut [u8]) -> io::Result<usize> {
        (&self.stream).read(buf)
    }

    /// Encodes and sends one response frame. Callable from any thread;
    /// never blocks: bytes the kernel refuses go to the outbox and the
    /// reactor is asked to flush them when the socket drains.
    pub(crate) fn send(&self, response: &Response) {
        let body = wire::encode_response(response);
        debug_assert!(body.len() <= wire::MAX_FRAME_LEN);
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        self.push_bytes(&frame);
    }

    fn push_bytes(&self, frame: &[u8]) {
        let mut out = self.out.lock().expect("outbox lock poisoned");
        if out.dead {
            return;
        }
        if out.backlog() > 0 {
            // Older bytes are already queued: appending keeps frame
            // order. Overflow condemns the connection (slow client).
            if out.backlog() + frame.len() > OUTBOX_CAP {
                out.dead = true;
                drop(out);
                obs::counter("serve.slow_client_drops", 1);
                self.reactor.check(self.token);
                return;
            }
            out.buf.extend_from_slice(frame);
            return;
        }
        // Fast path: nothing queued, write inline under the lock (the
        // lock is what keeps frames from interleaving across workers).
        let mut written = 0;
        loop {
            match (&self.stream).write(&frame[written..]) {
                Ok(0) => {
                    out.dead = true;
                    drop(out);
                    self.reactor.check(self.token);
                    return;
                }
                Ok(n) => {
                    written += n;
                    if written == frame.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    out.buf.clear();
                    out.pos = 0;
                    out.buf.extend_from_slice(&frame[written..]);
                    let first = !out.wants_flush;
                    out.wants_flush = true;
                    drop(out);
                    if first {
                        self.reactor.flush(self.token);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    out.dead = true;
                    drop(out);
                    self.reactor.check(self.token);
                    return;
                }
            }
        }
    }

    /// Writes as much backlog as the kernel accepts (reactor thread,
    /// on `EPOLLOUT` or a flush command).
    pub(crate) fn flush_outbox(&self) -> Flush {
        let mut out = self.out.lock().expect("outbox lock poisoned");
        if out.dead {
            return Flush::Dead;
        }
        while out.backlog() > 0 {
            let pos = out.pos;
            match (&self.stream).write(&out.buf[pos..]) {
                Ok(0) => {
                    out.dead = true;
                    return Flush::Dead;
                }
                Ok(n) => out.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flush::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    out.dead = true;
                    return Flush::Dead;
                }
            }
        }
        out.buf.clear();
        out.pos = 0;
        out.wants_flush = false;
        Flush::Empty
    }

    /// Counts one predict request handed to the batch queue.
    pub(crate) fn begin_request(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one response for a queued predict request; when it was
    /// the last one on a read-finished connection, nudges the reactor
    /// so the close is prompt.
    pub(crate) fn finish_request(&self) {
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.read_shut.load(Ordering::SeqCst)
        {
            self.reactor.check(self.token);
        }
    }

    /// Marks the read side finished (EOF, framing damage, shutdown).
    pub(crate) fn mark_read_shut(&self) {
        self.read_shut.store(true, Ordering::SeqCst);
    }

    /// Whether the read side is finished.
    pub(crate) fn is_read_shut(&self) -> bool {
        self.read_shut.load(Ordering::SeqCst)
    }

    /// A connection is reaped once it will never produce another byte:
    /// reads are done, every queued request is answered, and the outbox
    /// is drained (or the connection is condemned).
    pub(crate) fn is_reapable(&self) -> bool {
        if !self.is_read_shut() || self.inflight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        let out = self.out.lock().expect("outbox lock poisoned");
        out.dead || out.backlog() == 0
    }

    /// Whether backlogged bytes are waiting on `EPOLLOUT`.
    pub(crate) fn has_backlog(&self) -> bool {
        let out = self.out.lock().expect("outbox lock poisoned");
        !out.dead && out.backlog() > 0
    }

    /// Hard-closes both directions (reap time). Lingering `Arc`s held
    /// by in-flight workers turn into harmless failed writes.
    pub(crate) fn close(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
