//! Per-connection state shared between the reactor and the batch
//! workers.
//!
//! A [`Conn`] owns the nonblocking `TcpStream` for its whole lifetime.
//! The reactor thread is the only reader; writers (batch workers and
//! the reactor's inline dispatch) all go through [`Conn::send`], which
//! serializes frames under the outbox lock:
//!
//! * **fast path** — the outbox is empty, so the frame is written
//!   straight to the socket. Under normal load this is the only path
//!   and responses never touch the reactor at all.
//! * **backlog path** — the socket would block (or older bytes are
//!   already backlogged), so the remainder is appended to the outbox
//!   and the owning reactor is asked to watch `EPOLLOUT` and flush.
//!
//! A client that stops reading while responses keep completing grows
//! its outbox until [`OUTBOX_CAP`] and is then condemned (tier-3 load
//! shedding, `serve.slow_client_drops`): the connection writes nothing
//! further and is torn down by its reactor.
//!
//! Teardown is reference-counted by work, not by `Arc`s: a connection
//! whose read side is finished ([`Conn::mark_read_shut`]) is closed as
//! soon as its last in-flight request has been answered and its outbox
//! has drained ([`Conn::is_reapable`]). Workers finishing the last
//! response nudge the reactor via [`ReactorQueue::check`] so the close
//! happens promptly instead of at the next unrelated wakeup.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::reactor::ReactorQueue;
use crate::wire::{self, Response};

/// Cap on buffered-but-unsent response bytes per connection. A client
/// that stops reading while its requests keep completing hits this cap
/// and is dropped rather than growing server memory without bound.
pub(crate) const OUTBOX_CAP: usize = 256 * 1024;

/// Consumed-prefix length at which the outbox slides its unsent tail to
/// the front. Each compaction memmoves at most [`OUTBOX_CAP`] bytes and
/// reclaims at least this many, so total memmove traffic is bounded by
/// `written_bytes * OUTBOX_CAP / OUTBOX_COMPACT_AT` — amortized O(1)
/// per byte, where the old always-retained prefix grew the buffer (and
/// its realloc copies) without bound under sustained backpressure.
pub(crate) const OUTBOX_COMPACT_AT: usize = 16 * 1024;

/// Result of a reactor-side outbox flush attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flush {
    /// Everything pending was written; `EPOLLOUT` interest can drop.
    Empty,
    /// The socket filled up again; keep `EPOLLOUT` interest.
    Pending,
    /// The transport failed or the connection was condemned; tear it
    /// down.
    Dead,
}

/// The outbox byte buffer: a flat `Vec` with a consumed-offset cursor.
/// `buf[pos..]` is unsent; `buf[..pos]` is dead weight reclaimed by
/// threshold compaction (see [`OUTBOX_COMPACT_AT`]).
struct OutboxBuf {
    buf: Vec<u8>,
    pos: usize,
    /// Total bytes memmoved by compaction (pinned by regression tests).
    moved: u64,
}

impl OutboxBuf {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            moved: 0,
        }
    }

    fn backlog(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reclaims the consumed prefix when it has grown past the
    /// threshold (or frees the buffer state when fully drained).
    fn compact_if_due(&mut self) {
        if self.pos == 0 {
            return;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            return;
        }
        if self.pos >= OUTBOX_COMPACT_AT {
            let backlog = self.backlog();
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(backlog);
            self.moved += backlog as u64;
            self.pos = 0;
        }
    }

    /// Queues `bytes` behind the current backlog; `false` means the
    /// [`OUTBOX_CAP`] would be exceeded (condemn the connection).
    fn append(&mut self, bytes: &[u8]) -> bool {
        if self.backlog() + bytes.len() > OUTBOX_CAP {
            return false;
        }
        self.compact_if_due();
        self.buf.extend_from_slice(bytes);
        true
    }

    /// Writes the backlog through `write` until drained or blocked.
    /// `Ok(true)` = drained, `Ok(false)` = the writer would block;
    /// errors (and zero-length writes) mean the transport is dead.
    fn flush_with<F: FnMut(&[u8]) -> io::Result<usize>>(
        &mut self,
        write: &mut F,
    ) -> io::Result<bool> {
        while self.backlog() > 0 {
            match write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.pos += n;
                    self.compact_if_due();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// Pending response bytes not yet accepted by the kernel, plus the
/// per-connection frame-encode scratch buffer.
struct Outbox {
    b: OutboxBuf,
    /// Reusable frame-encode buffer: every [`Conn::send`] encodes into
    /// this one allocation instead of a fresh `Vec` per frame.
    scratch: Vec<u8>,
    /// The owning reactor has been asked to watch `EPOLLOUT`.
    wants_flush: bool,
    /// Condemned: transport error or outbox overflow. All later writes
    /// are no-ops and the reactor tears the connection down.
    dead: bool,
}

/// Follow-up work a locked push decided on, performed after the outbox
/// lock is released (reactor wakeups must not run under it).
enum PushAction {
    None,
    /// First backlogged bytes: ask the reactor to watch `EPOLLOUT`.
    RequestFlush,
    /// Transport died mid-write: ask the reactor to reap.
    Check,
    /// Outbox overflow: tier-3 shed, count and reap.
    SlowClientDrop,
}

/// One live client connection, shared (via `Arc`) between the owning
/// reactor and every batch worker holding one of its requests.
pub(crate) struct Conn {
    /// The reactor-assigned epoll token.
    pub(crate) token: u64,
    stream: TcpStream,
    out: Mutex<Outbox>,
    /// Predict requests enqueued but not yet answered.
    inflight: AtomicUsize,
    /// The reactor stopped reading (EOF, framing damage, or shutdown).
    read_shut: AtomicBool,
    /// The owning reactor's command queue + waker.
    reactor: Arc<ReactorQueue>,
}

impl Conn {
    /// Wraps an accepted stream: nonblocking (readiness-driven) and
    /// nodelay (small response frames must not wait for ACKs).
    pub(crate) fn new(
        stream: TcpStream,
        token: u64,
        reactor: Arc<ReactorQueue>,
    ) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            token,
            stream,
            out: Mutex::new(Outbox {
                b: OutboxBuf::new(),
                scratch: Vec::new(),
                wants_flush: false,
                dead: false,
            }),
            inflight: AtomicUsize::new(0),
            read_shut: AtomicBool::new(false),
            reactor,
        })
    }

    /// The raw fd, for reactor registration only.
    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads from the socket (reactor thread only).
    pub(crate) fn read_into(&self, buf: &mut [u8]) -> io::Result<usize> {
        (&self.stream).read(buf)
    }

    /// Encodes and sends one response frame. Callable from any thread;
    /// never blocks: bytes the kernel refuses go to the outbox and the
    /// reactor is asked to flush them when the socket drains. The frame
    /// is encoded into the connection's scratch buffer — zero
    /// allocations per frame once the scratch has warmed up.
    pub(crate) fn send(&self, response: &Response) {
        let action = {
            let mut out = self.out.lock().expect("outbox lock poisoned");
            if out.dead {
                return;
            }
            // Take the scratch out so the encoded frame and the outbox
            // can be borrowed side by side; restored before unlock.
            let mut scratch = std::mem::take(&mut out.scratch);
            wire::encode_response_frame_into(response, &mut scratch);
            debug_assert!(scratch.len() <= 4 + wire::MAX_FRAME_LEN);
            let action = self.push_locked(&mut out, &scratch);
            out.scratch = scratch;
            action
        };
        match action {
            PushAction::None => {}
            PushAction::RequestFlush => self.reactor.flush(self.token),
            PushAction::Check => self.reactor.check(self.token),
            PushAction::SlowClientDrop => {
                obs::counter("serve.slow_client_drops", 1);
                self.reactor.check(self.token);
            }
        }
    }

    /// Writes or queues one frame with the outbox lock held (the lock
    /// is what keeps frames from interleaving across workers). Reactor
    /// wakeups happen after unlock, via the returned action.
    fn push_locked(&self, out: &mut Outbox, frame: &[u8]) -> PushAction {
        if out.b.backlog() > 0 {
            // Older bytes are already queued: appending keeps frame
            // order. Overflow condemns the connection (slow client).
            if out.b.append(frame) {
                return PushAction::None;
            }
            out.dead = true;
            return PushAction::SlowClientDrop;
        }
        // Fast path: nothing queued, write inline.
        let mut written = 0;
        loop {
            match (&self.stream).write(&frame[written..]) {
                Ok(0) => {
                    out.dead = true;
                    return PushAction::Check;
                }
                Ok(n) => {
                    written += n;
                    if written == frame.len() {
                        return PushAction::None;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // A single frame always fits: OUTBOX_CAP is far
                    // above the max frame length.
                    let fit = out.b.append(&frame[written..]);
                    debug_assert!(fit);
                    let first = !out.wants_flush;
                    out.wants_flush = true;
                    return if first {
                        PushAction::RequestFlush
                    } else {
                        PushAction::None
                    };
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    out.dead = true;
                    return PushAction::Check;
                }
            }
        }
    }

    /// Writes as much backlog as the kernel accepts (reactor thread,
    /// on `EPOLLOUT` or a flush command).
    pub(crate) fn flush_outbox(&self) -> Flush {
        let mut out = self.out.lock().expect("outbox lock poisoned");
        if out.dead {
            return Flush::Dead;
        }
        let mut stream = &self.stream;
        match out.b.flush_with(&mut |bytes| stream.write(bytes)) {
            Ok(true) => {
                out.wants_flush = false;
                Flush::Empty
            }
            Ok(false) => Flush::Pending,
            Err(_) => {
                out.dead = true;
                Flush::Dead
            }
        }
    }

    /// Counts one predict request handed to the batch queue.
    pub(crate) fn begin_request(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one response for a queued predict request; when it was
    /// the last one on a read-finished connection, nudges the reactor
    /// so the close is prompt.
    pub(crate) fn finish_request(&self) {
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.read_shut.load(Ordering::SeqCst)
        {
            self.reactor.check(self.token);
        }
    }

    /// Marks the read side finished (EOF, framing damage, shutdown).
    pub(crate) fn mark_read_shut(&self) {
        self.read_shut.store(true, Ordering::SeqCst);
    }

    /// Whether the read side is finished.
    pub(crate) fn is_read_shut(&self) -> bool {
        self.read_shut.load(Ordering::SeqCst)
    }

    /// A connection is reaped once it will never produce another byte:
    /// reads are done, every queued request is answered, and the outbox
    /// is drained (or the connection is condemned).
    pub(crate) fn is_reapable(&self) -> bool {
        if !self.is_read_shut() || self.inflight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        let out = self.out.lock().expect("outbox lock poisoned");
        out.dead || out.b.backlog() == 0
    }

    /// Whether backlogged bytes are waiting on `EPOLLOUT`.
    pub(crate) fn has_backlog(&self) -> bool {
        let out = self.out.lock().expect("outbox lock poisoned");
        !out.dead && out.b.backlog() > 0
    }

    /// Hard-closes both directions (reap time). Lingering `Arc`s held
    /// by in-flight workers turn into harmless failed writes.
    pub(crate) fn close(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The O(n²)/unbounded-growth regression: under sustained
    /// backpressure (every flush drains a trickle while new frames keep
    /// arriving) the outbox used to retain its consumed prefix until
    /// fully drained, growing the buffer — and its realloc copies —
    /// without bound. The cursor + threshold compaction keeps both the
    /// buffer length and the total memmoved bytes bounded.
    #[test]
    fn outbox_compaction_bounds_buffer_and_memmove_traffic() {
        let mut out = OutboxBuf::new();
        let frame = vec![0xABu8; 512];
        let mut total_written = 0u64;
        let mut appended = 0u64;
        for _ in 0..10_000 {
            if out.append(&frame) {
                appended += frame.len() as u64;
            }
            // A slow client: the kernel accepts a trickle, then blocks.
            let mut budget = 96usize;
            let drained = out
                .flush_with(&mut |bytes: &[u8]| {
                    if budget == 0 {
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                    let n = bytes.len().min(budget);
                    budget -= n;
                    total_written += n as u64;
                    Ok(n)
                })
                .unwrap();
            assert!(!drained || out.backlog() == 0);
            // Bounded memory: backlog cap plus at most one compaction
            // threshold of dead prefix.
            assert!(
                out.buf.len() <= OUTBOX_CAP + OUTBOX_COMPACT_AT,
                "outbox buffer grew to {} bytes",
                out.buf.len()
            );
        }
        // Bounded memmove: each compaction reclaims >= OUTBOX_COMPACT_AT
        // consumed bytes and moves <= OUTBOX_CAP live ones.
        let max_moved = (total_written / OUTBOX_COMPACT_AT as u64 + 1) * OUTBOX_CAP as u64;
        assert!(
            out.moved <= max_moved,
            "memmoved {} bytes for {} written (bound {})",
            out.moved,
            total_written,
            max_moved
        );
        assert_eq!(out.backlog() as u64, appended - total_written);
    }

    /// Byte-stream integrity across interleaved appends, partial
    /// flushes, and compactions: what comes out is exactly what went in.
    #[test]
    fn outbox_preserves_byte_order_across_compactions() {
        let mut out = OutboxBuf::new();
        let mut expected: Vec<u8> = Vec::new();
        let mut got: Vec<u8> = Vec::new();
        let mut seed = 0x9E3779B97F4A7C15u64;
        for round in 0..4_000u32 {
            let frame: Vec<u8> = (0..100).map(|i| (round as u8).wrapping_add(i)).collect();
            assert!(out.append(&frame));
            expected.extend_from_slice(&frame);
            // Pseudo-random trickle sizes exercise every cursor state.
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut budget = (seed >> 33) as usize % 160;
            let _ = out.flush_with(&mut |bytes: &[u8]| {
                if budget == 0 {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let n = bytes.len().min(budget);
                budget -= n;
                got.extend_from_slice(&bytes[..n]);
                Ok(n)
            });
        }
        let _ = out.flush_with(&mut |bytes: &[u8]| {
            got.extend_from_slice(bytes);
            Ok(bytes.len())
        });
        assert_eq!(got, expected);
        assert!(out.moved > 0, "the sweep never exercised compaction");
    }

    /// Overflow is detected against the live backlog (not the dead
    /// prefix), and zero-length writes condemn the transport.
    #[test]
    fn outbox_overflow_and_write_zero() {
        let mut out = OutboxBuf::new();
        assert!(out.append(&vec![0u8; OUTBOX_CAP]));
        assert!(!out.append(&[0u8]), "cap not enforced");
        // Drain half; the freed space is usable again.
        let mut budget = OUTBOX_CAP / 2;
        let _ = out.flush_with(&mut |bytes: &[u8]| {
            if budget == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = bytes.len().min(budget);
            budget -= n;
            Ok(n)
        });
        assert!(out.append(&vec![0u8; OUTBOX_CAP / 2]));
        let err = out
            .flush_with(&mut |_: &[u8]| Ok(0))
            .expect_err("write zero must be fatal");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }
}
