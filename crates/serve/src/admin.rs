//! The live-telemetry admin endpoint: a tiny std-only HTTP listener.
//!
//! The inference listener speaks the binary `LHQ1` protocol; operators
//! and scrapers want plain HTTP. A second listener (`--admin-addr` on
//! the CLI) serves read-only views of the process's observability state:
//!
//! | route           | content                                            |
//! |-----------------|----------------------------------------------------|
//! | `/metrics.json` | [`obs::snapshot`] as deterministic JSON            |
//! | `/metrics`      | the same snapshot in Prometheus text exposition    |
//! | `/trace.json`   | the trace ring as Chrome trace-event JSON          |
//! | `/healthz`      | `ok`, or `503` + a reason while draining, in       |
//! |                 | sustained admission shed, or burning a declared    |
//! |                 | SLO (see [`crate::slo`]) — wire a health state via |
//! |                 | [`start_admin_with`]                               |
//! | `/slo.json`     | the full SLO verdict: targets, windowed            |
//! |                 | measurements, burn rates                           |
//!
//! The server is deliberately minimal: HTTP/1.0, `Connection: close`,
//! one short-lived thread per request, no keep-alive, no TLS, no
//! routing beyond exact path match. It must never interfere with the
//! inference path — every response is built from a snapshot or an
//! export call, both of which only briefly lock the registries. Bind it
//! to loopback (or an otherwise trusted interface); it has no
//! authentication.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::slo::HealthState;

/// Optional wiring for an admin listener (see [`start_admin_with`]).
#[derive(Debug, Default)]
pub struct AdminOptions {
    health: Option<Arc<HealthState>>,
}

impl AdminOptions {
    /// No health state: `/healthz` is a bare liveness probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wires a server's health state (see [`crate::ServerHandle::health`])
    /// into `/healthz` and `/slo.json`.
    pub fn with_health(mut self, health: Arc<HealthState>) -> Self {
        self.health = Some(health);
        self
    }
}

/// Cap on an accepted request head (request line + headers). Anything
/// longer is answered `400` — this endpoint serves four fixed routes and
/// has no business buffering large requests.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Read/write timeout on admin connections, so one stalled scraper can
/// never pin a handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A running admin listener. Dropping the handle does **not** stop it;
/// call [`AdminHandle::shutdown`] then [`AdminHandle::join`].
pub struct AdminHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl AdminHandle {
    /// The address the listener actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting new admin connections. Idempotent, non-blocking.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Blocks until the accept loop has exited. In-flight request
    /// handlers are detached and finish on their own (each is bounded by
    /// [`IO_TIMEOUT`]).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Binds `addr` and starts serving the admin routes. Returns once the
/// listener is live; use [`AdminHandle::addr`] to discover the bound
/// port.
///
/// # Errors
///
/// Returns the bind error.
pub fn start_admin<A: ToSocketAddrs>(addr: A) -> io::Result<AdminHandle> {
    start_admin_with(addr, AdminOptions::new())
}

/// [`start_admin`] with wiring: a health state turns `/healthz` into an
/// SLO-aware readiness probe (`503` + reason while draining, in
/// sustained admission shed, or burning a declared objective) and backs
/// `/slo.json`.
///
/// # Errors
///
/// Returns the bind error.
pub fn start_admin_with<A: ToSocketAddrs>(
    addr: A,
    options: AdminOptions,
) -> io::Result<AdminHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        let options = Arc::new(options);
        std::thread::spawn(move || accept_loop(&listener, &stop, &options))
    };
    Ok(AdminHandle {
        local_addr,
        stop,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, options: &Arc<AdminOptions>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // One thread per request: admin traffic is a handful of scrapes
        // per interval, not a fan-in workload.
        let options = Arc::clone(options);
        std::thread::spawn(move || handle_connection(stream, &options));
    }
}

/// `/healthz`: `200 ok` without a health state or while healthy; `503`
/// plus the most severe reason otherwise.
fn health_response(options: &AdminOptions) -> (u16, String) {
    let Some(health) = &options.health else {
        return (200, "ok\n".to_string());
    };
    let verdict = health.evaluate(&obs::snapshot());
    match verdict.reason() {
        None => (200, "ok\n".to_string()),
        Some(reason) => (503, format!("unhealthy: {reason}\n")),
    }
}

fn handle_connection(mut stream: TcpStream, options: &AdminOptions) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = match read_request_head(&mut stream) {
        Ok(head) => head,
        Err(_) => return,
    };
    let (status, content_type, body) = match parse_request_line(&head) {
        Some(("GET", "/metrics.json")) => (200, "application/json", obs::snapshot().to_json()),
        Some(("GET", "/metrics")) => (
            200,
            "text/plain; version=0.0.4",
            obs::snapshot().to_prometheus(),
        ),
        Some(("GET", "/trace.json")) => (200, "application/json", obs::trace::to_chrome_json()),
        Some(("GET", "/healthz")) => {
            let (status, body) = health_response(options);
            (status, "text/plain", body)
        }
        Some(("GET", "/slo.json")) => match &options.health {
            Some(health) => (
                200,
                "application/json",
                health.evaluate(&obs::snapshot()).to_json(),
            ),
            None => (
                404,
                "text/plain",
                "no SLO configured on this server\n".to_string(),
            ),
        },
        Some(("GET", path)) => (
            404,
            "text/plain",
            format!(
                "no such route: {path}\navailable: /metrics.json /metrics /trace.json /healthz /slo.json\n"
            ),
        ),
        Some((method, _)) => (405, "text/plain", format!("method {method} not allowed\n")),
        None => (400, "text/plain", "malformed request line\n".to_string()),
    };
    let _ = write_response(&mut stream, status, content_type, &body);
}

/// Reads until the blank line ending the request head, bounded by
/// [`MAX_REQUEST_HEAD`]. Only the request line is ever inspected, but
/// draining the headers first keeps clients that send them happy.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_REQUEST_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

/// Splits `GET /path HTTP/1.x` into `(method, path)`.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    // Ignore query strings: `/metrics.json?x=1` still routes.
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against an admin endpoint: sends the
/// request, requires a `200`, and returns the response body. Shared by
/// the load generator, the CI smoke, and the tests so none of them grow
/// their own HTTP client.
///
/// # Errors
///
/// Returns `InvalidData` for a non-200 status or an unparsable response,
/// and propagates transport errors.
pub fn http_get<A: ToSocketAddrs>(addr: A, path: &str) -> io::Result<String> {
    let (status, body) = http_get_status(addr, path)?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("GET {path} returned {status}"),
        ));
    }
    Ok(body)
}

/// Like [`http_get`] but returns `(status, body)` without treating a
/// non-200 as an error — the probe for routes whose status *is* the
/// signal (`/healthz` answering `503` while degraded).
///
/// # Errors
///
/// Returns `InvalidData` for an unparsable response and propagates
/// transport errors.
pub fn http_get_status<A: ToSocketAddrs>(addr: A, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.0\r\nHost: lookhd-admin\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line}"),
            )
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::obs_test_guard as locked;

    #[test]
    fn serves_all_routes_and_shuts_down() {
        let _guard = locked();
        obs::set_enabled(true);
        obs::reset();
        obs::trace::set_enabled(true);
        obs::trace::reset();
        obs::counter("admin.test.hits", 3);
        obs::record("admin/test", Duration::from_nanos(100));
        obs::trace::pair("admin_span", 7, 10, 20);

        let admin = start_admin("127.0.0.1:0").unwrap();
        let addr = admin.addr();

        let health = http_get(addr, "/healthz").unwrap();
        assert_eq!(health, "ok\n");

        let json = http_get(addr, "/metrics.json").unwrap();
        assert!(json.contains("\"version\": 3"));
        assert!(json.contains("{\"name\": \"admin.test.hits\", \"labels\": {}, \"value\": 3"));
        assert!(json.contains("\"admin/test\""));

        let prom = http_get(addr, "/metrics").unwrap();
        assert!(prom.contains("# TYPE lookhd_admin_test_hits counter"));
        assert!(prom.contains("lookhd_admin_test_hits 3"));
        assert!(prom.contains("# TYPE lookhd_span_admin_test_ns histogram"));

        let trace = http_get(addr, "/trace.json").unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"admin_span\""));
        assert!(trace.contains("\"id\": \"0x7\""));

        assert!(http_get(addr, "/nope").is_err());

        admin.shutdown();
        admin.shutdown(); // idempotent
        admin.join();
        // The listener is gone.
        std::thread::sleep(Duration::from_millis(20));
        assert!(http_get(addr, "/healthz").is_err());

        obs::trace::set_enabled(false);
        obs::trace::reset();
        obs::set_enabled(false);
        obs::reset();
    }

    #[test]
    fn malformed_requests_get_clean_errors() {
        let _guard = locked();
        let admin = start_admin("127.0.0.1:0").unwrap();
        let addr = admin.addr();

        // POST is not allowed.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "got: {raw}");

        // Garbage request line.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"garbage\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 400"), "got: {raw}");

        // Query strings are ignored for routing.
        assert_eq!(http_get(addr, "/healthz?probe=1").unwrap(), "ok\n");

        admin.shutdown();
        admin.join();
    }

    #[test]
    fn request_head_cap_is_enforced() {
        let _guard = locked();
        let admin = start_admin("127.0.0.1:0").unwrap();
        let addr = admin.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // A never-ending header stream: the handler must give up at the
        // cap and drop the connection rather than buffer forever.
        let filler = vec![b'a'; MAX_REQUEST_HEAD + 1024];
        let _ = stream.write_all(b"GET /healthz HTTP/1.0\r\n");
        let _ = stream.write_all(&filler);
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        assert!(raw.is_empty(), "expected a dropped connection, got: {raw}");
        admin.shutdown();
        admin.join();
    }
}
