//! A minimal blocking client for the `lookhd-serve` wire protocol.
//!
//! One [`Client`] wraps one TCP connection. Requests may be pipelined
//! ([`Client::send`] many, then [`Client::recv`] many); responses carry
//! the request id, so out-of-order completion under server-side batching
//! is unambiguous. The convenience calls ([`Client::predict`],
//! [`Client::ping`]) are strict request/response round trips.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{self, Request, Response, WireResult};

/// A blocking connection to a `lookhd-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bounds how long [`Client::recv`] blocks (`None` = forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request frame without waiting for the response
    /// (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        wire::write_request(&mut self.stream, request)
    }

    /// Reads the next response frame, in server completion order.
    ///
    /// # Errors
    ///
    /// Returns a [`wire::WireError`] for transport failures or a
    /// malformed response.
    pub fn recv(&mut self) -> WireResult<Response> {
        wire::read_response(&mut self.stream)
    }

    /// Round-trips one untraced predict request (a v1 frame on the wire).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn predict(&mut self, id: u64, features: &[f64]) -> WireResult<Response> {
        self.predict_traced(id, 0, features)
    }

    /// Round-trips one predict request carrying a client trace id. A
    /// non-zero `trace_id` selects the v2 frame layout; the server echoes
    /// the id in the response and stamps it on every per-request span it
    /// records (see `obs::trace`). A zero id degrades to [`Client::predict`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn predict_traced(
        &mut self,
        id: u64,
        trace_id: u64,
        features: &[f64],
    ) -> WireResult<Response> {
        self.send(&Request::Predict {
            id,
            trace_id,
            features: features.to_vec(),
        })?;
        self.recv()
    }

    /// Round-trips one version-stamped predict request (`LHF1` kind 3):
    /// the [`Response::PredictStamped`] answer carries the model version
    /// that produced it, so callers can pin each prediction to an exact
    /// model across hot-swaps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn predict_stamped(&mut self, id: u64, features: &[f64]) -> WireResult<Response> {
        self.send(&Request::PredictStamped {
            id,
            trace_id: 0,
            features: features.to_vec(),
        })?;
        self.recv()
    }

    /// Round-trips one feedback frame (`LHF1` kind 1): the server folds
    /// the labelled example into its live training counters and answers
    /// with [`Response::FeedbackAck`] carrying the current model version
    /// and the total examples observed so far.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn feedback(&mut self, id: u64, label: u32, features: &[f64]) -> WireResult<Response> {
        self.send(&Request::Feedback {
            id,
            trace_id: 0,
            label,
            features: features.to_vec(),
        })?;
        self.recv()
    }

    /// Asks the server to materialize its live counters into a new model
    /// version and hot-swap it (`LHF1` kind 2); the
    /// [`Response::RefreshAck`] carries the new version.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn refresh(&mut self, id: u64) -> WireResult<Response> {
        self.send(&Request::Refresh { id, trace_id: 0 })?;
        self.recv()
    }

    /// Round-trips one ping.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn ping(&mut self, id: u64) -> WireResult<Response> {
        self.send(&Request::Ping { id })?;
        self.recv()
    }

    /// Asks the server to shut down gracefully and waits for the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::recv`].
    pub fn shutdown_server(&mut self, id: u64) -> WireResult<Response> {
        self.send(&Request::Shutdown { id })?;
        self.recv()
    }

    /// The underlying stream (for tests that need raw byte access).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
