//! Loading served models from the workspace's persisted formats.
//!
//! The server speaks to models exclusively through the object-safe
//! [`Classifier`] trait, so any of the three on-disk formats can sit
//! behind one endpoint:
//!
//! * **`LKS1`** — a full [`LookHdClassifier`] (quantizer, lookup encoder,
//!   and compressed model). Requests carry *raw feature vectors*; the
//!   server encodes and classifies exactly like `lookhd predict`. When the
//!   artifact carries a scoring-kernel section (`--kernel` at train time:
//!   an SLT1 score-LUT or a BIN1 binary kernel), the server picks it up
//!   transparently and reports the active kernel in the admin snapshot
//!   (`kernel.active.<name>`). The score-LUT is bit-identical to the
//!   dense path, so responses do not change, only their latency; the
//!   binary kernel is an explicitly opted-in approximation.
//! * **`HDC1`** — a bare [`ClassModel`] with no encoder. Requests carry a
//!   *pre-encoded hypervector* (one `f64` per dimension, rounded to the
//!   nearest `i32`); the edge device runs the cheap lookup encoding and
//!   ships the hypervector, the server runs the similarity search.
//! * **`LKC1`** — a bare [`CompressedModel`]; same pre-encoded contract
//!   as `HDC1` against the compressed search path.
//!
//! The format is sniffed from the artifact's magic bytes, mirroring how
//! the persistence layer brands its streams.

use std::path::Path;
use std::sync::{Arc, Mutex};

use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use hdc::{Classifier, HdcError, Result};
use lookhd::{CompressedModel, LookHdClassifier};

/// A classifier that can be shared across server worker threads.
pub type SharedClassifier = Arc<dyn Classifier + Send + Sync>;

/// One immutable model version: the classifier plus the monotonically
/// increasing version number it was installed under. Batch workers hold
/// an `Arc<VersionedModel>` for the whole batch, so every request in a
/// batch is answered by the version that was live when the batch was
/// popped — even if a hot-swap lands mid-batch.
///
/// Construction pre-interns the version's dimensional metric handles
/// (`serve.predictions{kernel=,model_version=}` and the per-class
/// `serve.predicted{class=}` family), so the serving hot path records
/// through integer ids — no allocation, no string hashing — and the
/// `model_version` label flips **atomically** with the slot swap: a
/// batch that loaded version N keeps stamping N even while version N+1
/// is already live for newer batches.
#[derive(Clone)]
pub struct VersionedModel {
    version: u64,
    classifier: SharedClassifier,
    /// `serve.predictions{kernel=,model_version=}` — one bump per ok
    /// response, carrying this version's labels.
    predictions_id: obs::MetricId,
    /// `serve.predicted{class=<i>}` by class index. Classes beyond the
    /// registry's per-name label-set cap intern as
    /// [`obs::MetricId::INVALID`] and tally into `obs.dropped_names`
    /// instead of silently exhausting the name table.
    predicted_ids: Vec<obs::MetricId>,
}

impl VersionedModel {
    /// Wraps a classifier as version `version`.
    pub fn new(version: u64, classifier: SharedClassifier) -> Self {
        let kernel = classifier.kernel_name().unwrap_or("none");
        let version_label = version.to_string();
        let predictions_id = obs::intern_counter(
            "serve.predictions",
            &[("kernel", kernel), ("model_version", &version_label)],
        );
        // Classes past the registry's per-name label-set cap would
        // intern as INVALID anyway; capping the handle vector here keeps
        // a pathological `num_classes()` from allocating one slot per
        // class. `predicted_id` answers INVALID beyond the vector, so
        // overflow classes still tally into `obs.dropped_names`.
        let predicted_ids = (0..classifier.num_classes().min(obs::MAX_LABEL_SETS_PER_NAME))
            .map(|class| obs::intern_counter("serve.predicted", &[("class", &class.to_string())]))
            .collect();
        Self {
            version,
            classifier,
            predictions_id,
            predicted_ids,
        }
    }

    /// The installation number of this version (starts at 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The classifier answering requests for this version.
    pub fn classifier(&self) -> &SharedClassifier {
        &self.classifier
    }

    /// The pre-interned `serve.predictions{kernel=,model_version=}`
    /// counter handle.
    pub fn predictions_id(&self) -> obs::MetricId {
        self.predictions_id
    }

    /// The pre-interned `serve.predicted{class=}` handle for `class`
    /// ([`obs::MetricId::INVALID`] for an out-of-range class, which a
    /// record then tallies as dropped rather than panicking).
    pub fn predicted_id(&self, class: usize) -> obs::MetricId {
        self.predicted_ids
            .get(class)
            .copied()
            .unwrap_or(obs::MetricId::INVALID)
    }
}

/// The server's atomically swappable model slot.
///
/// [`ModelSlot::load`] hands out an `Arc` snapshot; [`ModelSlot::swap`]
/// installs a fresh classifier under the next version number. In-flight
/// work keeps predicting on the snapshot it loaded while new loads see
/// the new version immediately — the hot-swap contract pinned by
/// `tests/serve_hotswap.rs`. The slot is a mutex around an `Arc`
/// (swaps are rare and loads are one uncontended lock + clone; std has
/// no atomic `Arc` cell).
pub struct ModelSlot {
    current: Mutex<Arc<VersionedModel>>,
}

impl ModelSlot {
    /// Creates a slot holding `classifier` as version 1.
    pub fn new(classifier: SharedClassifier) -> Self {
        Self {
            current: Mutex::new(Arc::new(VersionedModel::new(1, classifier))),
        }
    }

    /// Snapshots the live version.
    pub fn load(&self) -> Arc<VersionedModel> {
        Arc::clone(&self.current.lock().expect("model slot poisoned"))
    }

    /// Atomically installs `classifier` as the next version and returns
    /// its version number.
    pub fn swap(&self, classifier: SharedClassifier) -> u64 {
        let mut slot = self.current.lock().expect("model slot poisoned");
        let version = slot.version() + 1;
        *slot = Arc::new(VersionedModel::new(version, classifier));
        version
    }

    /// The live version number.
    pub fn version(&self) -> u64 {
        self.current.lock().expect("model slot poisoned").version()
    }
}

/// Converts a wire feature vector into a hypervector query for the
/// encoder-less formats: arity must match the model dimension exactly and
/// every value is rounded to the nearest `i32`.
fn query_from_features(features: &[f64], dim: usize) -> Result<DenseHv> {
    if features.len() != dim {
        return Err(HdcError::DimensionMismatch {
            expected: dim,
            actual: features.len(),
        });
    }
    Ok(DenseHv::from_vec(
        features.iter().map(|&v| v.round() as i32).collect(),
    ))
}

/// [`Classifier`] adapter over a bare `HDC1` class model: features are a
/// pre-encoded hypervector.
#[derive(Debug, Clone)]
pub struct RawModelClassifier {
    model: ClassModel,
}

impl RawModelClassifier {
    /// Wraps a deserialized class model.
    pub fn new(model: ClassModel) -> Self {
        Self { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &ClassModel {
        &self.model
    }
}

impl Classifier for RawModelClassifier {
    fn num_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn predict(&self, features: &[f64]) -> Result<usize> {
        self.model
            .predict(&query_from_features(features, self.model.dim())?)
    }

    fn class_scores(&self, features: &[f64]) -> Result<Option<Vec<f64>>> {
        self.model
            .scores(&query_from_features(features, self.model.dim())?)
            .map(Some)
    }
}

/// [`Classifier`] adapter over a bare `LKC1` compressed model: features
/// are a pre-encoded hypervector.
#[derive(Debug, Clone)]
pub struct CompressedModelClassifier {
    model: CompressedModel,
}

impl CompressedModelClassifier {
    /// Wraps a deserialized compressed model.
    pub fn new(model: CompressedModel) -> Self {
        Self { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &CompressedModel {
        &self.model
    }
}

impl Classifier for CompressedModelClassifier {
    fn num_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn predict(&self, features: &[f64]) -> Result<usize> {
        self.model
            .predict(&query_from_features(features, self.model.dim())?)
    }

    fn class_scores(&self, features: &[f64]) -> Result<Option<Vec<f64>>> {
        self.model
            .scores(&query_from_features(features, self.model.dim())?)
            .map(Some)
    }
}

/// Deserializes a servable classifier from any persisted format,
/// dispatching on the artifact's magic bytes (`LKS1`, `HDC1`, `LKC1`).
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for an unrecognized magic and
/// propagates the format's own errors for malformed artifacts.
pub fn classifier_from_bytes(bytes: &[u8]) -> Result<SharedClassifier> {
    match bytes.get(..4) {
        Some(b"LKS1") => Ok(Arc::new(LookHdClassifier::from_bytes(bytes)?)),
        Some(b"HDC1") => {
            let model = hdc::persist::model_from_bytes(bytes)
                .map_err(|e| HdcError::invalid_dataset(format!("HDC1 model: {e}")))?;
            Ok(Arc::new(RawModelClassifier::new(model)))
        }
        Some(b"LKC1") => Ok(Arc::new(CompressedModelClassifier::new(
            CompressedModel::from_bytes(bytes)?,
        ))),
        _ => Err(HdcError::invalid_dataset(
            "unrecognized model magic: expected LKS1, HDC1, or LKC1",
        )),
    }
}

/// Reads a servable classifier from a file (see [`classifier_from_bytes`]).
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for I/O failures or malformed
/// artifacts.
pub fn load_classifier(path: &Path) -> Result<SharedClassifier> {
    let bytes = std::fs::read(path)
        .map_err(|e| HdcError::invalid_dataset(format!("reading {}: {e}", path.display())))?;
    classifier_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::FitClassifier;
    use lookhd::LookHdConfig;

    fn tiny_lookhd() -> (LookHdClassifier, Vec<Vec<f64>>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            let jitter = (i / 2) as f64 * 0.01;
            features.push(vec![base + jitter, base - jitter, base, 1.0 - base]);
            labels.push(class);
        }
        let config = LookHdConfig::new().with_dim(64).with_retrain_epochs(1);
        let clf = LookHdClassifier::fit(&config, &features, &labels).unwrap();
        (clf, features)
    }

    #[test]
    fn all_three_formats_load_and_predict() {
        let (clf, features) = tiny_lookhd();

        let lks = classifier_from_bytes(&clf.to_bytes().unwrap()).unwrap();
        for x in &features {
            assert_eq!(lks.predict(x).unwrap(), clf.predict(x).unwrap());
        }

        let hdc_bytes = hdc::persist::model_to_bytes(clf.model()).unwrap();
        let raw = classifier_from_bytes(&hdc_bytes).unwrap();
        assert_eq!(raw.num_classes(), clf.model().n_classes());
        let lkc = classifier_from_bytes(&clf.compressed().to_bytes().unwrap()).unwrap();
        assert_eq!(lkc.num_classes(), clf.compressed().n_classes());
        for x in &features {
            let h = clf.encode(x).unwrap();
            let as_f64: Vec<f64> = h.as_slice().iter().map(|&v| v as f64).collect();
            assert_eq!(
                raw.predict(&as_f64).unwrap(),
                clf.model().predict(&h).unwrap()
            );
            assert_eq!(
                lkc.predict(&as_f64).unwrap(),
                clf.compressed().predict(&h).unwrap()
            );
        }
    }

    #[test]
    fn score_lut_artifact_loads_and_matches_dense_sibling() {
        let (dense_clf, features) = tiny_lookhd();
        // Same data and seed, kernel enabled (which needs decorrelation
        // off — also turn it off for the dense sibling so the two models
        // are trained identically).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            let jitter = (i / 2) as f64 * 0.01;
            xs.push(vec![base + jitter, base - jitter, base, 1.0 - base]);
            ys.push(class);
        }
        let base_cfg = LookHdConfig::new()
            .with_dim(64)
            .with_retrain_epochs(1)
            .with_compression(lookhd::CompressionConfig::new().with_decorrelate(false));
        let dense = LookHdClassifier::fit(&base_cfg, &xs, &ys).unwrap();
        let fast = LookHdClassifier::fit(
            &base_cfg.clone().with_kernel(lookhd::KernelSpec::auto()),
            &xs,
            &ys,
        )
        .unwrap();
        assert!(fast.score_lut().is_some());
        let served = classifier_from_bytes(&fast.to_bytes().unwrap()).unwrap();
        assert_eq!(served.kernel_name(), Some("lut"));
        for x in &features {
            assert_eq!(served.predict(x).unwrap(), dense.predict(x).unwrap());
        }
        let _ = dense_clf;
    }

    #[test]
    fn binary_kernel_artifact_loads_and_reports_its_kernel() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            let jitter = (i / 2) as f64 * 0.01;
            xs.push(vec![base + jitter, base - jitter, base, 1.0 - base]);
            ys.push(class);
        }
        let cfg = LookHdConfig::new()
            .with_dim(64)
            .with_retrain_epochs(1)
            .with_compression(lookhd::CompressionConfig::new().with_decorrelate(false))
            .with_kernel(lookhd::KernelSpec::binary().with_multifold(2));
        let clf = LookHdClassifier::fit(&cfg, &xs, &ys).unwrap();
        let served = classifier_from_bytes(&clf.to_bytes().unwrap()).unwrap();
        assert_eq!(served.kernel_name(), Some("binary"));
        for x in &xs {
            assert_eq!(served.predict(x).unwrap(), clf.predict(x).unwrap());
        }
        // Encoder-less formats report no kernel.
        let raw =
            classifier_from_bytes(&hdc::persist::model_to_bytes(clf.model()).unwrap()).unwrap();
        assert_eq!(raw.kernel_name(), None);
    }

    #[test]
    fn wrong_arity_and_bad_magic_error() {
        let (clf, _) = tiny_lookhd();
        let raw =
            classifier_from_bytes(&hdc::persist::model_to_bytes(clf.model()).unwrap()).unwrap();
        assert!(raw.predict(&[1.0, 2.0]).is_err());
        assert!(classifier_from_bytes(b"NOPE-not-a-model").is_err());
        assert!(classifier_from_bytes(&[]).is_err());
        assert!(load_classifier(Path::new("/nonexistent/model.lks")).is_err());
    }
}
