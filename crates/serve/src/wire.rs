//! The `lookhd-serve` binary wire protocol.
//!
//! Every message on the wire is one *frame*: a little-endian `u32` body
//! length followed by that many body bytes. Frame bodies begin with a
//! 4-byte magic ([`REQUEST_MAGIC`] / [`RESPONSE_MAGIC`]) and a version
//! byte, mirroring the hardening conventions of the `HDC1`/`LKS1`/`LKC1`
//! persistence formats: length headers are untrusted until proven
//! otherwise.
//!
//! ## Request body (`LHQ1`)
//!
//! | field      | size | notes                                       |
//! |------------|------|---------------------------------------------|
//! | magic      | 4    | `LHQ1`                                      |
//! | version    | 1    | [`WIRE_VERSION`] or [`WIRE_VERSION_TRACED`] |
//! | kind       | 1    | 1 = predict, 2 = ping, 3 = shutdown         |
//! | request id | 8    | echoed verbatim in the response             |
//! | trace id   | 8    | **version 2 only**; echoed in the response  |
//! | n_features | 4    | predict only; capped at [`MAX_FEATURES`]    |
//! | features   | 8·n  | predict only; `f64` little-endian           |
//!
//! ## Feedback-family request body (`LHF1`)
//!
//! The online-training frames share the LHQ1 header layout under their
//! own magic, so a server without online training rejects them with one
//! tag check rather than misparsing them as predicts.
//!
//! | field      | size | notes                                             |
//! |------------|------|---------------------------------------------------|
//! | magic      | 4    | `LHF1`                                            |
//! | version    | 1    | [`WIRE_VERSION`] or [`WIRE_VERSION_TRACED`]       |
//! | kind       | 1    | 1 = feedback, 2 = refresh, 3 = stamped predict    |
//! | request id | 8    | echoed verbatim in the response                   |
//! | trace id   | 8    | **version 2 only**; echoed in the response        |
//! | label      | 4    | feedback only; the ground-truth class             |
//! | n_features | 4    | feedback / stamped predict; capped at [`MAX_FEATURES`] |
//! | features   | 8·n  | feedback / stamped predict; `f64` little-endian   |
//!
//! ## Response body (`LHR1`)
//!
//! | field      | size | notes                                        |
//! |------------|------|----------------------------------------------|
//! | magic      | 4    | `LHR1`                                       |
//! | version    | 1    | [`WIRE_VERSION`] or [`WIRE_VERSION_TRACED`]  |
//! | request id | 8    | copied from the request                      |
//! | trace id   | 8    | **version 2 only**; copied from the request  |
//! | status     | 1    | 0 = predict ok, 1 = pong, 2 = error, 3 = feedback ack, 4 = refresh ack, 5 = stamped predict |
//! | class      | 4    | predict ok / stamped predict                 |
//! | error code | 1    | error only ([`ErrorCode`])                   |
//! | msg len    | 2    | error only; capped at [`MAX_ERROR_MESSAGE`]  |
//! | msg        | len  | error only; UTF-8                            |
//! | version    | 8    | feedback ack / refresh ack / stamped predict: the live model version |
//! | observed   | 8    | feedback ack only: total examples folded     |
//!
//! ## Versioning
//!
//! Version 2 is version 1 plus one 64-bit trace-id field immediately
//! after the request id, in **both** directions and for **every**
//! kind/status. Decoders accept both versions; encoders emit version 2
//! exactly when the message carries a non-zero trace id, so untraced
//! traffic (and every v1 client) keeps exchanging byte-identical v1
//! frames — a v1 client never receives a v2 response. Trace id 0 means
//! "untraced" and is therefore not representable on the wire as v2.
//!
//! ## Hardening
//!
//! * A frame length above [`MAX_FRAME_LEN`] is rejected **before** any
//!   allocation; in-cap lengths are read through [`std::io::Read::take`],
//!   so a lying header hits EOF while buffers are still small.
//! * `n_features` is checked against both [`MAX_FEATURES`] and the bytes
//!   actually present in the body before the feature vector is allocated.
//! * Trailing bytes after a complete message are rejected with the
//!   offending offset; decoders never panic on arbitrary input (see
//!   `tests/prop_serve_wire.rs` and `tests/serve_corruption.rs`).

use std::fmt;
use std::io::{self, Read, Write};

/// Request-body magic bytes.
pub const REQUEST_MAGIC: &[u8; 4] = b"LHQ1";

/// Feedback-family request magic bytes (online training: labeled
/// feedback, model refresh, version-stamped predicts).
pub const FEEDBACK_MAGIC: &[u8; 4] = b"LHF1";

/// Response-body magic bytes.
pub const RESPONSE_MAGIC: &[u8; 4] = b"LHR1";

/// Baseline protocol version (no trace id on the wire).
pub const WIRE_VERSION: u8 = 1;

/// Traced protocol version: identical to [`WIRE_VERSION`] plus one
/// 64-bit trace-id field after the request id. Emitted exactly when a
/// message carries a non-zero trace id; decoders accept both versions.
pub const WIRE_VERSION_TRACED: u8 = 2;

/// Largest feature count a predict request may carry (2^16). Far above
/// any real model arity, small enough that a corrupt count cannot demand
/// a multi-GB allocation.
pub const MAX_FEATURES: usize = 1 << 16;

/// Longest error message a response may carry.
pub const MAX_ERROR_MESSAGE: usize = 1 << 10;

/// Largest frame body either side accepts: a maximal predict request
/// (header + `MAX_FEATURES` doubles) with headroom. Checked against the
/// length prefix before any allocation happens.
pub const MAX_FRAME_LEN: usize = 64 + 8 * MAX_FEATURES;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one feature vector.
    Predict {
        /// Caller-chosen id echoed in the response (responses may arrive
        /// out of order under pipelining).
        id: u64,
        /// Caller-chosen trace id stamped onto the server's per-stage
        /// trace events and echoed in the response. `0` = untraced (the
        /// request travels as a v1 frame).
        trace_id: u64,
        /// Raw feature values, in model arity.
        features: Vec<f64>,
    },
    /// Liveness probe answered directly by the connection reader,
    /// bypassing the batch queue.
    Ping {
        /// Caller-chosen id echoed in the pong.
        id: u64,
    },
    /// Ask the server to shut down gracefully (drain the queue, join all
    /// workers). Acknowledged with a pong before the drain begins.
    Shutdown {
        /// Caller-chosen id echoed in the acknowledgement.
        id: u64,
    },
    /// Fold one labeled example into the server's live training counters
    /// (an `LHF1` frame). Rejected with `BadRequest` when the server was
    /// not started with online training.
    Feedback {
        /// Caller-chosen id echoed in the acknowledgement.
        id: u64,
        /// Caller-chosen trace id (0 = untraced, a v1 frame).
        trace_id: u64,
        /// The ground-truth class label for `features`.
        label: u32,
        /// Raw feature values, in model arity.
        features: Vec<f64>,
    },
    /// Materialize the accumulated counters into a fresh model version
    /// and hot-swap it live (an `LHF1` frame). Rejected with
    /// `BadRequest` when the server was not started with online
    /// training.
    Refresh {
        /// Caller-chosen id echoed in the acknowledgement.
        id: u64,
        /// Caller-chosen trace id (0 = untraced, a v1 frame).
        trace_id: u64,
    },
    /// Classify one feature vector and stamp the answering model version
    /// on the response (an `LHF1` frame) — the hot-swap soak tests use
    /// the stamp to check bit-identity against the exact version that
    /// answered.
    PredictStamped {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Caller-chosen trace id (0 = untraced, a v1 frame).
        trace_id: u64,
        /// Raw feature values, in model arity.
        features: Vec<f64>,
    },
}

impl Request {
    /// The caller-chosen request id.
    pub fn id(&self) -> u64 {
        match self {
            Self::Predict { id, .. }
            | Self::Ping { id }
            | Self::Shutdown { id }
            | Self::Feedback { id, .. }
            | Self::Refresh { id, .. }
            | Self::PredictStamped { id, .. } => *id,
        }
    }

    /// The trace id this request propagates (0 = untraced; pings and
    /// shutdowns are never traced).
    pub fn trace_id(&self) -> u64 {
        match self {
            Self::Predict { trace_id, .. }
            | Self::Feedback { trace_id, .. }
            | Self::Refresh { trace_id, .. }
            | Self::PredictStamped { trace_id, .. } => *trace_id,
            Self::Ping { .. } | Self::Shutdown { .. } => 0,
        }
    }
}

/// Why a request failed, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request was malformed or the model rejected its features
    /// (wrong arity, non-finite values, …).
    BadRequest = 1,
    /// The request sat in the queue past its deadline and was dropped
    /// without running inference.
    DeadlineExceeded = 2,
    /// The bounded request queue was full; the client should back off and
    /// retry.
    Overloaded = 3,
    /// The server failed internally while processing the request.
    Internal = 4,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown = 5,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::BadRequest),
            2 => Some(Self::DeadlineExceeded),
            3 => Some(Self::Overloaded),
            4 => Some(Self::Internal),
            5 => Some(Self::ShuttingDown),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::BadRequest => "bad request",
            Self::DeadlineExceeded => "deadline exceeded",
            Self::Overloaded => "overloaded",
            Self::Internal => "internal error",
            Self::ShuttingDown => "shutting down",
        };
        f.write_str(name)
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful classification.
    Predict {
        /// The id of the request this answers.
        id: u64,
        /// The trace id echoed from the request (0 = untraced, answered
        /// as a v1 frame).
        trace_id: u64,
        /// The predicted class label.
        class: u32,
    },
    /// Answer to a ping or shutdown request.
    Pong {
        /// The id of the request this answers.
        id: u64,
    },
    /// The request failed; `code` says why.
    Error {
        /// The id of the request this answers (0 when the request never
        /// parsed far enough to carry one).
        id: u64,
        /// The trace id echoed from the request (0 when untraced or the
        /// request never parsed far enough to carry one).
        trace_id: u64,
        /// Machine-readable failure category.
        code: ErrorCode,
        /// Human-readable detail (capped at [`MAX_ERROR_MESSAGE`]).
        message: String,
    },
    /// One labeled example was folded into the live training counters.
    FeedbackAck {
        /// The id of the request this answers.
        id: u64,
        /// The trace id echoed from the request (0 = untraced).
        trace_id: u64,
        /// The model version serving when the fold completed.
        version: u64,
        /// Total examples folded into the live trainer so far.
        observed: u64,
    },
    /// A model refresh completed and the new version is live.
    RefreshAck {
        /// The id of the request this answers.
        id: u64,
        /// The trace id echoed from the request (0 = untraced).
        trace_id: u64,
        /// The version that is now answering new requests.
        version: u64,
    },
    /// Successful classification, stamped with the answering model
    /// version.
    PredictStamped {
        /// The id of the request this answers.
        id: u64,
        /// The trace id echoed from the request (0 = untraced).
        trace_id: u64,
        /// The predicted class label.
        class: u32,
        /// The model version that produced `class`.
        version: u64,
    },
}

impl Response {
    /// The id of the request this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Self::Predict { id, .. }
            | Self::Pong { id }
            | Self::Error { id, .. }
            | Self::FeedbackAck { id, .. }
            | Self::RefreshAck { id, .. }
            | Self::PredictStamped { id, .. } => *id,
        }
    }

    /// The trace id echoed to the client (0 = untraced; pongs are never
    /// traced).
    pub fn trace_id(&self) -> u64 {
        match self {
            Self::Predict { trace_id, .. }
            | Self::Error { trace_id, .. }
            | Self::FeedbackAck { trace_id, .. }
            | Self::RefreshAck { trace_id, .. }
            | Self::PredictStamped { trace_id, .. } => *trace_id,
            Self::Pong { .. } => 0,
        }
    }
}

/// Decoding/transport failures.
#[derive(Debug)]
pub enum WireError {
    /// The message ended before a required field.
    Truncated {
        /// Offset at which more bytes were needed.
        offset: usize,
        /// The field being read.
        field: &'static str,
    },
    /// The body did not start with the expected magic.
    BadMagic,
    /// The version byte is neither [`WIRE_VERSION`] nor
    /// [`WIRE_VERSION_TRACED`].
    BadVersion(u8),
    /// An unknown request kind / response status / error code byte.
    BadTag {
        /// The field holding the tag.
        field: &'static str,
        /// The unrecognised value.
        value: u8,
    },
    /// A length field exceeded its cap.
    TooLarge {
        /// The field holding the length.
        field: &'static str,
        /// The claimed value.
        value: usize,
        /// The cap it violated.
        cap: usize,
    },
    /// Bytes remained after a complete message.
    Trailing {
        /// Offset of the first trailing byte.
        offset: usize,
        /// How many bytes were left over.
        count: usize,
    },
    /// An error message was not valid UTF-8.
    BadUtf8,
    /// An underlying transport error.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { offset, field } => {
                write!(f, "truncated at offset {offset} while reading {field}")
            }
            Self::BadMagic => write!(f, "bad magic: not a lookhd-serve message"),
            Self::BadVersion(v) => write!(
                f,
                "unsupported wire version {v} (want {WIRE_VERSION} or {WIRE_VERSION_TRACED})"
            ),
            Self::BadTag { field, value } => write!(f, "unknown {field} tag {value}"),
            Self::TooLarge { field, value, cap } => {
                write!(f, "{field} {value} exceeds the wire limit of {cap}")
            }
            Self::Trailing { offset, count } => {
                write!(
                    f,
                    "{count} trailing byte(s) after message (offset {offset})"
                )
            }
            Self::BadUtf8 => write!(f, "error message is not valid UTF-8"),
            Self::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Specialized result for wire operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------------
// Byte-slice cursor (decoding)
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> WireResult<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated {
                offset: self.pos,
                field,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> WireResult<u8> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> WireResult<u16> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &'static str) -> WireResult<u32> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> WireResult<u64> {
        let b = self.take(8, field)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn finish(self) -> WireResult<()> {
        let count = self.bytes.len() - self.pos;
        if count != 0 {
            return Err(WireError::Trailing {
                offset: self.pos,
                count,
            });
        }
        Ok(())
    }
}

/// Validates magic + version and returns the accepted version byte
/// ([`WIRE_VERSION`] or [`WIRE_VERSION_TRACED`]).
fn check_header(c: &mut Cursor<'_>, magic: &[u8; 4]) -> WireResult<u8> {
    if c.take(4, "magic")? != magic {
        return Err(WireError::BadMagic);
    }
    let version = c.u8("version")?;
    if version != WIRE_VERSION && version != WIRE_VERSION_TRACED {
        return Err(WireError::BadVersion(version));
    }
    Ok(version)
}

/// Reads the v2 trace-id field (absent and zero in v1).
fn read_trace_id(c: &mut Cursor<'_>, version: u8) -> WireResult<u64> {
    if version == WIRE_VERSION_TRACED {
        c.u64("trace id")
    } else {
        Ok(0)
    }
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

const KIND_PREDICT: u8 = 1;
const KIND_PING: u8 = 2;
const KIND_SHUTDOWN: u8 = 3;

// The LHF1 feedback family has its own kind namespace.
const FEEDBACK_KIND_FEEDBACK: u8 = 1;
const FEEDBACK_KIND_REFRESH: u8 = 2;
const FEEDBACK_KIND_PREDICT_STAMPED: u8 = 3;

/// Encodes a request body (without the frame length prefix). A non-zero
/// trace id selects the v2 layout; everything else stays byte-identical
/// to v1. The feedback-family variants travel under the `LHF1` magic,
/// everything else under `LHQ1`.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let trace_id = request.trace_id();
    let mut out = Vec::with_capacity(40);
    match request {
        Request::Predict { .. } | Request::Ping { .. } | Request::Shutdown { .. } => {
            out.extend_from_slice(REQUEST_MAGIC);
        }
        Request::Feedback { .. } | Request::Refresh { .. } | Request::PredictStamped { .. } => {
            out.extend_from_slice(FEEDBACK_MAGIC);
        }
    }
    out.push(if trace_id == 0 {
        WIRE_VERSION
    } else {
        WIRE_VERSION_TRACED
    });
    let push_features = |out: &mut Vec<u8>, features: &[f64]| {
        debug_assert!(features.len() <= MAX_FEATURES);
        out.extend_from_slice(&(features.len() as u32).to_le_bytes());
        for v in features {
            out.extend_from_slice(&v.to_le_bytes());
        }
    };
    let push_ids = |out: &mut Vec<u8>, id: u64| {
        out.extend_from_slice(&id.to_le_bytes());
        if trace_id != 0 {
            out.extend_from_slice(&trace_id.to_le_bytes());
        }
    };
    match request {
        Request::Predict { id, features, .. } => {
            out.push(KIND_PREDICT);
            push_ids(&mut out, *id);
            push_features(&mut out, features);
        }
        Request::Ping { id } => {
            out.push(KIND_PING);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Shutdown { id } => {
            out.push(KIND_SHUTDOWN);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Feedback {
            id,
            label,
            features,
            ..
        } => {
            out.push(FEEDBACK_KIND_FEEDBACK);
            push_ids(&mut out, *id);
            out.extend_from_slice(&label.to_le_bytes());
            push_features(&mut out, features);
        }
        Request::Refresh { id, .. } => {
            out.push(FEEDBACK_KIND_REFRESH);
            push_ids(&mut out, *id);
        }
        Request::PredictStamped { id, features, .. } => {
            out.push(FEEDBACK_KIND_PREDICT_STAMPED);
            push_ids(&mut out, *id);
            push_features(&mut out, features);
        }
    }
    out
}

/// Reads a cap-checked feature vector (count validated against both
/// [`MAX_FEATURES`] and the bytes actually present before allocation).
fn read_features(c: &mut Cursor<'_>) -> WireResult<Vec<f64>> {
    let n = c.u32("n_features")? as usize;
    if n > MAX_FEATURES {
        return Err(WireError::TooLarge {
            field: "n_features",
            value: n,
            cap: MAX_FEATURES,
        });
    }
    // The count is untrusted: make sure the bytes are actually
    // present before allocating the feature vector.
    let payload = c.take(n * 8, "features")?;
    Ok(payload
        .chunks_exact(8)
        .map(|b| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(b);
            f64::from_le_bytes(buf)
        })
        .collect())
}

/// Decodes a request body. Never panics, whatever the input.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first malformed field.
pub fn decode_request(bytes: &[u8]) -> WireResult<Request> {
    let mut c = Cursor::new(bytes);
    let magic = c.take(4, "magic")?;
    let feedback_family = if magic == REQUEST_MAGIC {
        false
    } else if magic == FEEDBACK_MAGIC {
        true
    } else {
        return Err(WireError::BadMagic);
    };
    let version = c.u8("version")?;
    if version != WIRE_VERSION && version != WIRE_VERSION_TRACED {
        return Err(WireError::BadVersion(version));
    }
    let kind = c.u8("kind")?;
    let id = c.u64("request id")?;
    // The v2 trace-id field follows the request id for every kind; ping
    // and shutdown consume and ignore it (they are never traced).
    let trace_id = read_trace_id(&mut c, version)?;
    let request = if feedback_family {
        match kind {
            FEEDBACK_KIND_FEEDBACK => {
                let label = c.u32("label")?;
                Request::Feedback {
                    id,
                    trace_id,
                    label,
                    features: read_features(&mut c)?,
                }
            }
            FEEDBACK_KIND_REFRESH => Request::Refresh { id, trace_id },
            FEEDBACK_KIND_PREDICT_STAMPED => Request::PredictStamped {
                id,
                trace_id,
                features: read_features(&mut c)?,
            },
            value => {
                return Err(WireError::BadTag {
                    field: "feedback kind",
                    value,
                })
            }
        }
    } else {
        match kind {
            KIND_PREDICT => Request::Predict {
                id,
                trace_id,
                features: read_features(&mut c)?,
            },
            KIND_PING => Request::Ping { id },
            KIND_SHUTDOWN => Request::Shutdown { id },
            value => {
                return Err(WireError::BadTag {
                    field: "request kind",
                    value,
                })
            }
        }
    };
    c.finish()?;
    Ok(request)
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

const STATUS_PREDICT: u8 = 0;
const STATUS_PONG: u8 = 1;
const STATUS_ERROR: u8 = 2;
const STATUS_FEEDBACK_ACK: u8 = 3;
const STATUS_REFRESH_ACK: u8 = 4;
const STATUS_PREDICT_STAMPED: u8 = 5;

/// Encodes a response body (without the frame length prefix). A
/// non-zero trace id selects the v2 layout (so v1 clients, which never
/// send one, always receive v1 frames). Error messages longer than
/// [`MAX_ERROR_MESSAGE`] bytes are truncated at a character boundary.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    encode_response_into(response, &mut out);
    out
}

/// Appends the encoded response body to `out` without clearing it —
/// the allocation-free sibling of [`encode_response`], used by the
/// reactor's per-connection scratch buffer so the hot path never
/// allocates a fresh `Vec` per frame.
pub fn encode_response_into(response: &Response, out: &mut Vec<u8>) {
    let trace_id = response.trace_id();
    out.extend_from_slice(RESPONSE_MAGIC);
    out.push(if trace_id == 0 {
        WIRE_VERSION
    } else {
        WIRE_VERSION_TRACED
    });
    match response {
        Response::Predict { id, class, .. } => {
            out.extend_from_slice(&id.to_le_bytes());
            if trace_id != 0 {
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            out.push(STATUS_PREDICT);
            out.extend_from_slice(&class.to_le_bytes());
        }
        Response::Pong { id } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(STATUS_PONG);
        }
        Response::Error {
            id, code, message, ..
        } => {
            out.extend_from_slice(&id.to_le_bytes());
            if trace_id != 0 {
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            out.push(STATUS_ERROR);
            out.push(*code as u8);
            let mut msg = message.as_str();
            while msg.len() > MAX_ERROR_MESSAGE {
                let mut cut = MAX_ERROR_MESSAGE;
                while !msg.is_char_boundary(cut) {
                    cut -= 1;
                }
                msg = &msg[..cut];
            }
            out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
        }
        Response::FeedbackAck {
            id,
            version,
            observed,
            ..
        } => {
            out.extend_from_slice(&id.to_le_bytes());
            if trace_id != 0 {
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            out.push(STATUS_FEEDBACK_ACK);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&observed.to_le_bytes());
        }
        Response::RefreshAck { id, version, .. } => {
            out.extend_from_slice(&id.to_le_bytes());
            if trace_id != 0 {
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            out.push(STATUS_REFRESH_ACK);
            out.extend_from_slice(&version.to_le_bytes());
        }
        Response::PredictStamped {
            id, class, version, ..
        } => {
            out.extend_from_slice(&id.to_le_bytes());
            if trace_id != 0 {
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            out.push(STATUS_PREDICT_STAMPED);
            out.extend_from_slice(&class.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
        }
    }
}

/// Encodes `response` as one complete wire frame (length prefix +
/// body) into `out`, clearing it first. Reusing one buffer across calls
/// replaces the old `Vec::with_capacity(4 + body.len())` per frame on
/// the response hot path.
pub fn encode_response_frame_into(response: &Response, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    encode_response_into(response, out);
    let body_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&body_len.to_le_bytes());
}

/// Decodes a response body. Never panics, whatever the input.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first malformed field.
pub fn decode_response(bytes: &[u8]) -> WireResult<Response> {
    let mut c = Cursor::new(bytes);
    let version = check_header(&mut c, RESPONSE_MAGIC)?;
    let id = c.u64("request id")?;
    let trace_id = read_trace_id(&mut c, version)?;
    let status = c.u8("status")?;
    let response = match status {
        STATUS_PREDICT => Response::Predict {
            id,
            trace_id,
            class: c.u32("class")?,
        },
        STATUS_PONG => Response::Pong { id },
        STATUS_ERROR => {
            let code_byte = c.u8("error code")?;
            let code = ErrorCode::from_u8(code_byte).ok_or(WireError::BadTag {
                field: "error code",
                value: code_byte,
            })?;
            let len = c.u16("msg len")? as usize;
            if len > MAX_ERROR_MESSAGE {
                return Err(WireError::TooLarge {
                    field: "msg len",
                    value: len,
                    cap: MAX_ERROR_MESSAGE,
                });
            }
            let raw = c.take(len, "msg")?;
            let message = std::str::from_utf8(raw)
                .map_err(|_| WireError::BadUtf8)?
                .to_owned();
            Response::Error {
                id,
                trace_id,
                code,
                message,
            }
        }
        STATUS_FEEDBACK_ACK => Response::FeedbackAck {
            id,
            trace_id,
            version: c.u64("model version")?,
            observed: c.u64("observed count")?,
        },
        STATUS_REFRESH_ACK => Response::RefreshAck {
            id,
            trace_id,
            version: c.u64("model version")?,
        },
        STATUS_PREDICT_STAMPED => Response::PredictStamped {
            id,
            trace_id,
            class: c.u32("class")?,
            version: c.u64("model version")?,
        },
        value => {
            return Err(WireError::BadTag {
                field: "response status",
                value,
            })
        }
    };
    c.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + body).
///
/// # Errors
///
/// Returns `InvalidData` for a body above [`MAX_FRAME_LEN`] and
/// propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame body of {} bytes exceeds the wire limit of {MAX_FRAME_LEN}",
                body.len()
            ),
        ));
    }
    // One buffered write per frame: splitting the prefix and body into
    // separate writes triggers Nagle/delayed-ACK stalls (~40 ms per
    // round trip) on sockets without `TCP_NODELAY`.
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame body.
///
/// The length prefix is untrusted: lengths above [`MAX_FRAME_LEN`] are
/// rejected before any allocation, and in-cap bodies are read through
/// [`Read::take`] so a lying length hits EOF with buffers still small.
///
/// # Errors
///
/// Returns [`WireError::TooLarge`] for an over-cap length,
/// [`WireError::Io`] for transport failures, and
/// [`WireError::Truncated`] when the stream ends mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> WireResult<Vec<u8>> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge {
            field: "frame length",
            value: len,
            cap: MAX_FRAME_LEN,
        });
    }
    let mut body = Vec::new();
    r.take(len as u64).read_to_end(&mut body)?;
    if body.len() != len {
        return Err(WireError::Truncated {
            offset: body.len(),
            field: "frame body",
        });
    }
    Ok(body)
}

/// Writes a request as one frame.
///
/// # Errors
///
/// Same conditions as [`write_frame`].
pub fn write_request<W: Write>(w: &mut W, request: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(request))
}

/// Reads and decodes one request frame.
///
/// # Errors
///
/// Same conditions as [`read_frame`] plus [`decode_request`] failures.
pub fn read_request<R: Read>(r: &mut R) -> WireResult<Request> {
    decode_request(&read_frame(r)?)
}

/// Writes a response as one frame.
///
/// # Errors
///
/// Same conditions as [`write_frame`].
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(response))
}

/// Reads and decodes one response frame.
///
/// # Errors
///
/// Same conditions as [`read_frame`] plus [`decode_response`] failures.
pub fn read_response<R: Read>(r: &mut R) -> WireResult<Response> {
    decode_response(&read_frame(r)?)
}

// ---------------------------------------------------------------------------
// Incremental framing (nonblocking readers)
// ---------------------------------------------------------------------------

/// Consumed-prefix length at which [`FrameDecoder`] compacts its buffer:
/// below this the dead bytes at the front are cheaper to carry than to
/// memmove; above it the remainder is slid to offset 0. Compaction also
/// fires whenever growing the buffer could be avoided by reclaiming the
/// consumed prefix, so total memmove traffic stays amortized O(1) per
/// byte received.
const DECODER_COMPACT_AT: usize = 4 * 1024;

/// Incremental frame reassembler for nonblocking sockets.
///
/// [`read_frame`] blocks until a whole frame arrives, which a readiness
/// loop cannot do: each `read(2)` returns whatever bytes the kernel has,
/// possibly a fraction of a frame or several pipelined frames at once.
/// `FrameDecoder` owns the connection's read buffer: the reactor reads
/// straight into [`space`], records the byte count with [`commit`], and
/// drains complete frames with [`next_frame`] — each frame body is a
/// `&[u8]` **borrowed** out of that buffer, so the steady-state decode
/// path performs zero per-frame allocations and zero copies beyond the
/// kernel→buffer read itself.
///
/// ## Borrowed-frame lifetime contract
///
/// A slice returned by [`next_frame`] is valid until the next call that
/// takes `&mut self` ([`space`], [`commit`], [`next_frame`], [`feed`]) —
/// the borrow checker enforces exactly this. Frames are consumed the
/// moment they are returned; the backing bytes are reclaimed lazily by
/// compaction (see [`DECODER_COMPACT_AT`]), never while a borrow is
/// live.
///
/// The hardening contract matches [`read_frame`]: the length prefix is
/// validated against [`MAX_FRAME_LEN`] the moment its fourth byte is
/// examined, and the buffer only ever grows to hold bytes actually
/// received (plus the caller's requested read headroom) — a lying
/// header can never demand a multi-GB allocation.
///
/// After an error the decoder is poisoned and every later call fails;
/// the connection should be torn down (which is what the serve reactor
/// does).
///
/// [`feed`] remains as a convenience for blocking-ish callers (the
/// loadgen client): it copies a chunk in and collects owned bodies.
///
/// [`space`]: FrameDecoder::space
/// [`commit`]: FrameDecoder::commit
/// [`next_frame`]: FrameDecoder::next_frame
/// [`feed`]: FrameDecoder::feed
pub struct FrameDecoder {
    /// Read buffer. `buf.len()` is the zero-initialized high-water mark;
    /// real data lives in `buf[start..filled]`.
    buf: Vec<u8>,
    start: usize,
    filled: usize,
    moved: u64,
    poisoned: Option<usize>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// Creates an empty decoder positioned at a frame boundary.
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            filled: 0,
            moved: 0,
            poisoned: None,
        }
    }

    fn poison_error(value: usize) -> WireError {
        WireError::TooLarge {
            field: "frame length",
            value,
            cap: MAX_FRAME_LEN,
        }
    }

    /// Slides `buf[start..filled]` to offset 0 when the consumed prefix
    /// is worth reclaiming (or when `extra` more bytes would otherwise
    /// force the buffer to grow).
    fn maybe_compact(&mut self, extra: usize) {
        if self.start == 0 {
            return;
        }
        if self.start == self.filled {
            self.start = 0;
            self.filled = 0;
            return;
        }
        if self.start >= DECODER_COMPACT_AT || self.filled + extra > self.buf.len() {
            self.buf.copy_within(self.start..self.filled, 0);
            self.moved += (self.filled - self.start) as u64;
            self.filled -= self.start;
            self.start = 0;
        }
    }

    /// Returns at least `min` writable bytes at the tail of the read
    /// buffer for the caller to `read(2)` into, compacting or growing
    /// first as needed. Follow with [`commit`] for the bytes actually
    /// read.
    ///
    /// [`commit`]: FrameDecoder::commit
    pub fn space(&mut self, min: usize) -> &mut [u8] {
        let min = min.max(1);
        self.maybe_compact(min);
        if self.buf.len() < self.filled + min {
            self.buf.resize(self.filled + min, 0);
        }
        &mut self.buf[self.filled..]
    }

    /// Records that `n` bytes were read into the slice returned by
    /// [`space`]. Panics if `n` exceeds the space handed out.
    ///
    /// [`space`]: FrameDecoder::space
    pub fn commit(&mut self, n: usize) {
        assert!(
            self.filled + n <= self.buf.len(),
            "commit of {n} bytes overruns the {} bytes of space handed out",
            self.buf.len() - self.filled
        );
        self.filled += n;
    }

    /// Pops the next complete frame body as a slice borrowed from the
    /// read buffer, or `None` when no complete frame is buffered yet.
    /// The frame is consumed immediately; the slice stays valid until
    /// the next `&mut self` call.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TooLarge`] when a length prefix exceeds
    /// [`MAX_FRAME_LEN`]; the decoder is then poisoned and every later
    /// call fails the same way.
    pub fn next_frame(&mut self) -> WireResult<Option<&[u8]>> {
        if let Some(value) = self.poisoned {
            return Err(Self::poison_error(value));
        }
        let avail = self.filled - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let prefix = [
            self.buf[self.start],
            self.buf[self.start + 1],
            self.buf[self.start + 2],
            self.buf[self.start + 3],
        ];
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            self.poisoned = Some(len);
            return Err(Self::poison_error(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let body_start = self.start + 4;
        self.start = body_start + len;
        Ok(Some(&self.buf[body_start..body_start + len]))
    }

    /// Consumes `chunk` (all of it), appending every frame body it
    /// completes to `frames` in arrival order. Convenience wrapper over
    /// [`space`]/[`commit`]/[`next_frame`] that copies bodies out; the
    /// reactor's hot path uses the borrowing API directly.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TooLarge`] when a length prefix exceeds
    /// [`MAX_FRAME_LEN`]; the decoder is then poisoned and every later
    /// call fails the same way. Bytes already appended to `frames` by
    /// the failing call are still valid complete frames.
    ///
    /// [`space`]: FrameDecoder::space
    /// [`commit`]: FrameDecoder::commit
    /// [`next_frame`]: FrameDecoder::next_frame
    pub fn feed(&mut self, chunk: &[u8], frames: &mut Vec<Vec<u8>>) -> WireResult<()> {
        if let Some(value) = self.poisoned {
            return Err(Self::poison_error(value));
        }
        if !chunk.is_empty() {
            self.space(chunk.len())[..chunk.len()].copy_from_slice(chunk);
            self.commit(chunk.len());
        }
        loop {
            match self.next_frame()? {
                Some(body) => frames.push(body.to_vec()),
                None => return Ok(()),
            }
        }
    }

    /// True when bytes of an unfinished frame are buffered, i.e. EOF at
    /// this point means the peer hung up mid-frame. Meaningful once all
    /// complete frames have been drained via [`next_frame`]/[`feed`].
    ///
    /// [`next_frame`]: FrameDecoder::next_frame
    /// [`feed`]: FrameDecoder::feed
    pub fn mid_frame(&self) -> bool {
        self.filled != self.start
    }

    /// How many bytes of the current partial frame are buffered
    /// (prefix bytes included). Used for read-buffer accounting; like
    /// [`mid_frame`], meaningful once complete frames are drained.
    ///
    /// [`mid_frame`]: FrameDecoder::mid_frame
    pub fn buffered(&self) -> usize {
        self.filled - self.start
    }

    /// Total bytes the compactor has memmoved over the decoder's
    /// lifetime. Bounded-compaction regression tests pin this.
    pub fn moved_bytes(&self) -> u64 {
        self.moved
    }

    /// Current allocated size of the internal read buffer. Steady-state
    /// decoding must not grow it — pinned by the zero-allocation test.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_bodies_round_trip() {
        let requests = [
            Request::Predict {
                id: 7,
                trace_id: 0,
                features: vec![0.25, -1.5, 1e300, f64::MIN_POSITIVE],
            },
            Request::Predict {
                id: u64::MAX,
                trace_id: 0,
                features: Vec::new(),
            },
            Request::Predict {
                id: 11,
                trace_id: u64::MAX,
                features: vec![0.5],
            },
            Request::Ping { id: 0 },
            Request::Shutdown { id: 42 },
        ];
        for request in &requests {
            let back = decode_request(&encode_request(request)).unwrap();
            assert_eq!(&back, request);
            assert_eq!(back.id(), request.id());
            assert_eq!(back.trace_id(), request.trace_id());
        }
    }

    #[test]
    fn response_bodies_round_trip() {
        let responses = [
            Response::Predict {
                id: 3,
                trace_id: 0,
                class: u32::MAX,
            },
            Response::Predict {
                id: 4,
                trace_id: 0xdead_beef,
                class: 1,
            },
            Response::Pong { id: 9 },
            Response::Error {
                id: 1,
                trace_id: 0,
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            Response::Error {
                id: 2,
                trace_id: 77,
                code: ErrorCode::DeadlineExceeded,
                message: String::new(),
            },
        ];
        for response in &responses {
            let back = decode_response(&encode_response(response)).unwrap();
            assert_eq!(&back, response);
            assert_eq!(back.id(), response.id());
            assert_eq!(back.trace_id(), response.trace_id());
        }
    }

    #[test]
    fn feedback_family_bodies_round_trip() {
        let requests = [
            Request::Feedback {
                id: 3,
                trace_id: 0,
                label: 7,
                features: vec![0.5, -2.25, 1e9],
            },
            Request::Feedback {
                id: 4,
                trace_id: 0xfeed,
                label: u32::MAX,
                features: Vec::new(),
            },
            Request::Refresh { id: 5, trace_id: 0 },
            Request::Refresh {
                id: 6,
                trace_id: 77,
            },
            Request::PredictStamped {
                id: 7,
                trace_id: 0,
                features: vec![1.0],
            },
            Request::PredictStamped {
                id: 8,
                trace_id: 9,
                features: vec![f64::MIN_POSITIVE, 0.0],
            },
        ];
        for request in &requests {
            let body = encode_request(request);
            assert_eq!(&body[..4], FEEDBACK_MAGIC);
            let back = decode_request(&body).unwrap();
            assert_eq!(&back, request);
            assert_eq!(back.id(), request.id());
            assert_eq!(back.trace_id(), request.trace_id());
        }
        let responses = [
            Response::FeedbackAck {
                id: 3,
                trace_id: 0,
                version: 1,
                observed: 42,
            },
            Response::FeedbackAck {
                id: 3,
                trace_id: 11,
                version: u64::MAX,
                observed: 0,
            },
            Response::RefreshAck {
                id: 5,
                trace_id: 0,
                version: 2,
            },
            Response::RefreshAck {
                id: 5,
                trace_id: 6,
                version: 3,
            },
            Response::PredictStamped {
                id: 7,
                trace_id: 0,
                class: u32::MAX,
                version: 9,
            },
            Response::PredictStamped {
                id: 7,
                trace_id: 1,
                class: 0,
                version: 1,
            },
        ];
        for response in &responses {
            let back = decode_response(&encode_response(response)).unwrap();
            assert_eq!(&back, response);
            assert_eq!(back.id(), response.id());
            assert_eq!(back.trace_id(), response.trace_id());
        }
    }

    #[test]
    fn feedback_frames_harden_like_predicts() {
        let body = encode_request(&Request::Feedback {
            id: 1,
            trace_id: 42,
            label: 2,
            features: vec![2.0, 3.0],
        });
        // Every truncation errors; a trailing byte is rejected.
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut {cut} parsed");
        }
        let mut extended = body.clone();
        extended.push(0);
        assert!(matches!(
            decode_request(&extended),
            Err(WireError::Trailing { .. })
        ));
        // The LHF1 kind namespace is its own: kind 4 is rejected.
        let mut bad_kind = body.clone();
        bad_kind[5] = 4;
        assert!(matches!(
            decode_request(&bad_kind),
            Err(WireError::BadTag {
                field: "feedback kind",
                ..
            })
        ));
        // An over-cap feature count is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(FEEDBACK_MAGIC);
        huge.push(WIRE_VERSION);
        huge.push(FEEDBACK_KIND_FEEDBACK);
        huge.extend_from_slice(&1u64.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes()); // label
        huge.extend_from_slice(&u32::MAX.to_le_bytes()); // n_features
        assert!(matches!(
            decode_request(&huge),
            Err(WireError::TooLarge { .. })
        ));
        // The v2 layout is v1 plus the trace id spliced after the id.
        let v1 = encode_request(&Request::Feedback {
            id: 1,
            trace_id: 0,
            label: 2,
            features: vec![2.0, 3.0],
        });
        assert_eq!(body.len(), v1.len() + 8);
        assert_eq!(&body[..4], &v1[..4]);
        assert_eq!(&body[5..14], &v1[5..14]);
        assert_eq!(&body[14..22], &42u64.to_le_bytes());
        assert_eq!(&body[22..], &v1[14..]);
        // New response statuses also reject truncation everywhere.
        let ack = encode_response(&Response::FeedbackAck {
            id: 9,
            trace_id: 3,
            version: 2,
            observed: 10,
        });
        for cut in 0..ack.len() {
            assert!(decode_response(&ack[..cut]).is_err(), "cut {cut} parsed");
        }
    }

    #[test]
    fn trace_id_selects_the_wire_version() {
        // Untraced messages stay byte-identical to v1.
        let untraced = encode_request(&Request::Predict {
            id: 7,
            trace_id: 0,
            features: vec![1.0],
        });
        assert_eq!(untraced[4], WIRE_VERSION);
        let traced = encode_request(&Request::Predict {
            id: 7,
            trace_id: 9,
            features: vec![1.0],
        });
        assert_eq!(traced[4], WIRE_VERSION_TRACED);
        assert_eq!(traced.len(), untraced.len() + 8);
        // The v2 layout is v1 plus the trace id spliced after the id.
        assert_eq!(&traced[..4], &untraced[..4]);
        assert_eq!(&traced[5..14], &untraced[5..14]);
        assert_eq!(&traced[14..22], &9u64.to_le_bytes());
        assert_eq!(&traced[22..], &untraced[14..]);
        // Same rule on the response side.
        let pong = encode_response(&Response::Pong { id: 3 });
        assert_eq!(pong[4], WIRE_VERSION);
        let err = encode_response(&Response::Error {
            id: 3,
            trace_id: 5,
            code: ErrorCode::Internal,
            message: "x".into(),
        });
        assert_eq!(err[4], WIRE_VERSION_TRACED);
    }

    #[test]
    fn v2_frames_harden_like_v1() {
        // Truncation inside the trace-id field is caught.
        let body = encode_request(&Request::Predict {
            id: 1,
            trace_id: 42,
            features: vec![2.0],
        });
        for cut in 14..22 {
            assert!(matches!(
                decode_request(&body[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
        // Trailing bytes after a complete v2 message are rejected.
        let mut extended = body.clone();
        extended.push(0);
        assert!(matches!(
            decode_request(&extended),
            Err(WireError::Trailing { .. })
        ));
        // A v2 ping (foreign encoder) must carry the trace-id field;
        // it is consumed and ignored.
        let mut ping = encode_request(&Request::Ping { id: 6 });
        ping[4] = WIRE_VERSION_TRACED;
        assert!(matches!(
            decode_request(&ping),
            Err(WireError::Truncated { .. })
        ));
        let mut id_then_trace = ping[..14].to_vec();
        id_then_trace.extend_from_slice(&123u64.to_le_bytes());
        assert_eq!(
            decode_request(&id_then_trace).unwrap(),
            Request::Ping { id: 6 }
        );
        // Version 3 is still rejected.
        let mut v3 = encode_request(&Request::Ping { id: 6 });
        v3[4] = 3;
        assert!(matches!(decode_request(&v3), Err(WireError::BadVersion(3))));
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let request = Request::Predict {
            id: 5,
            trace_id: 0,
            features: vec![1.0, 2.0],
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &request).unwrap();
        write_response(&mut buf, &Response::Pong { id: 5 }).unwrap();
        let mut r = io::Cursor::new(&buf);
        assert_eq!(read_request(&mut r).unwrap(), request);
        assert_eq!(read_response(&mut r).unwrap(), Response::Pong { id: 5 });
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        // Frame length prefix claiming 4 GB.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&bytes)),
            Err(WireError::TooLarge { .. })
        ));
        // In-cap but lying frame length: EOF before large buffers.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN as u32).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&bytes)),
            Err(WireError::Truncated { .. })
        ));
        // Feature count above the cap inside a request body.
        let mut body = Vec::new();
        body.extend_from_slice(REQUEST_MAGIC);
        body.push(WIRE_VERSION);
        body.push(KIND_PREDICT);
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&body),
            Err(WireError::TooLarge { .. })
        ));
        // Over-long frame body on the write side.
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }

    #[test]
    fn bad_magic_version_and_tags_are_rejected() {
        let mut body = encode_request(&Request::Ping { id: 1 });
        body[0] = b'X';
        assert!(matches!(decode_request(&body), Err(WireError::BadMagic)));
        let mut body = encode_request(&Request::Ping { id: 1 });
        body[4] = 99;
        assert!(matches!(
            decode_request(&body),
            Err(WireError::BadVersion(99))
        ));
        let mut body = encode_request(&Request::Ping { id: 1 });
        body[5] = 200;
        assert!(matches!(
            decode_request(&body),
            Err(WireError::BadTag { .. })
        ));
        let mut body = encode_response(&Response::Pong { id: 1 });
        body[13] = 200;
        assert!(matches!(
            decode_response(&body),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_request(&Request::Ping { id: 1 });
        body.push(0);
        assert!(matches!(
            decode_request(&body),
            Err(WireError::Trailing { .. })
        ));
        let mut body = encode_response(&Response::Predict {
            id: 1,
            trace_id: 0,
            class: 2,
        });
        body.push(0);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Trailing { .. })
        ));
    }

    #[test]
    fn long_error_messages_are_truncated_on_encode() {
        let response = Response::Error {
            id: 1,
            trace_id: 0,
            code: ErrorCode::Internal,
            message: "x".repeat(MAX_ERROR_MESSAGE * 2),
        };
        let back = decode_response(&encode_response(&response)).unwrap();
        match back {
            Response::Error { message, .. } => assert_eq!(message.len(), MAX_ERROR_MESSAGE),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn frame_decoder_matches_read_frame_at_every_split() {
        // Three pipelined frames, including an empty-features predict.
        let bodies = [
            encode_request(&Request::Predict {
                id: 1,
                trace_id: 9,
                features: vec![1.0, -2.5, 3e7],
            }),
            encode_request(&Request::Ping { id: 2 }),
            encode_request(&Request::Predict {
                id: 3,
                trace_id: 0,
                features: Vec::new(),
            }),
        ];
        let mut stream = Vec::new();
        for body in &bodies {
            write_frame(&mut stream, body).unwrap();
        }
        // Blocking reference decode.
        let mut r = io::Cursor::new(&stream);
        let reference: Vec<Vec<u8>> = (0..bodies.len())
            .map(|_| read_frame(&mut r).unwrap())
            .collect();
        assert_eq!(reference.as_slice(), bodies.as_slice());
        // Incremental decode, split at every byte boundary.
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            dec.feed(&stream[..split], &mut frames).unwrap();
            dec.feed(&stream[split..], &mut frames).unwrap();
            assert_eq!(frames, bodies, "split at {split}");
            assert!(!dec.mid_frame());
            assert_eq!(dec.buffered(), 0);
        }
        // And one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b), &mut frames).unwrap();
        }
        assert_eq!(frames, bodies);
    }

    #[test]
    fn frame_decoder_rejects_oversized_prefix_before_buffering() {
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        // Feed exactly the 4-byte lying prefix: rejected immediately,
        // before a body allocation.
        let err = dec.feed(&u32::MAX.to_le_bytes(), &mut frames).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { .. }));
        assert!(err.to_string().contains("limit"));
        // Poisoned: later feeds keep failing.
        assert!(dec.feed(&[0u8; 8], &mut frames).is_err());
        assert!(frames.is_empty());
    }

    #[test]
    fn frame_decoder_tracks_partial_frames() {
        let body = encode_request(&Request::Ping { id: 7 });
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        assert!(!dec.mid_frame());
        dec.feed(&framed[..2], &mut frames).unwrap();
        assert!(dec.mid_frame());
        assert_eq!(dec.buffered(), 2);
        dec.feed(&framed[2..6], &mut frames).unwrap();
        assert!(dec.mid_frame());
        assert_eq!(dec.buffered(), 6);
        dec.feed(&framed[6..], &mut frames).unwrap();
        assert!(!dec.mid_frame());
        assert_eq!(frames, vec![body]);
        // A zero-length frame completes at the prefix boundary.
        let mut frames = Vec::new();
        dec.feed(&0u32.to_le_bytes(), &mut frames).unwrap();
        assert_eq!(frames, vec![Vec::<u8>::new()]);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn borrowing_decoder_matches_feed_at_every_split() {
        let bodies: Vec<Vec<u8>> = vec![
            encode_request(&Request::Ping { id: 1 }),
            encode_request(&Request::Predict {
                id: 2,
                trace_id: 9,
                features: vec![0.5; 7],
            }),
            encode_response(&Response::Pong { id: 3 }),
        ];
        let mut stream = Vec::new();
        for body in &bodies {
            write_frame(&mut stream, body).unwrap();
        }
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for chunk in [&stream[..split], &stream[split..]] {
                if chunk.is_empty() {
                    continue;
                }
                dec.space(chunk.len())[..chunk.len()].copy_from_slice(chunk);
                dec.commit(chunk.len());
                while let Some(body) = dec.next_frame().unwrap() {
                    got.push(body.to_vec());
                }
            }
            assert_eq!(got, bodies, "split at {split}");
            assert!(!dec.mid_frame());
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn borrowing_decoder_reuses_its_buffer_without_growing() {
        let body = encode_request(&Request::Predict {
            id: 1,
            trace_id: 0,
            features: vec![1.0; 16],
        });
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let mut dec = FrameDecoder::new();
        // Warm up: one frame establishes the buffer size.
        dec.space(framed.len())[..framed.len()].copy_from_slice(&framed);
        dec.commit(framed.len());
        assert_eq!(dec.next_frame().unwrap().unwrap(), body.as_slice());
        let settled = dec.buffer_capacity();
        // Steady state: thousands of frames, zero buffer growth — the
        // read buffer is the only storage and frames borrow from it.
        for _ in 0..10_000 {
            dec.space(framed.len())[..framed.len()].copy_from_slice(&framed);
            dec.commit(framed.len());
            assert_eq!(dec.next_frame().unwrap().unwrap(), body.as_slice());
        }
        assert_eq!(
            dec.buffer_capacity(),
            settled,
            "steady-state decode grew the read buffer"
        );
        // Compaction traffic stays amortized: never more than the total
        // bytes fed through the decoder.
        assert!(dec.moved_bytes() <= (10_001 * framed.len()) as u64);
    }

    #[test]
    fn borrowing_decoder_compacts_partial_frames_across_reads() {
        let body = encode_request(&Request::Ping { id: 42 });
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let mut dec = FrameDecoder::new();
        // Feed many frames, always splitting mid-frame so a partial
        // tail must survive each compaction.
        let mut pending: Vec<u8> = Vec::new();
        for _ in 0..5_000 {
            pending.extend_from_slice(&framed);
            let keep = 3.min(pending.len());
            let now = pending.len() - keep;
            dec.space(now)[..now].copy_from_slice(&pending[..now]);
            dec.commit(now);
            pending.drain(..now);
            while let Some(b) = dec.next_frame().unwrap() {
                assert_eq!(b, body.as_slice());
            }
        }
        // The consumed front is reclaimed: the buffer stays near the
        // compaction threshold, not 5 000 frames long.
        assert!(
            dec.buffer_capacity() < 2 * DECODER_COMPACT_AT + 2 * framed.len(),
            "capacity {} suggests the consumed prefix is never reclaimed",
            dec.buffer_capacity()
        );
    }

    #[test]
    fn encode_response_frame_into_matches_write_frame() {
        let responses = [
            Response::Pong { id: 1 },
            Response::Predict {
                id: 2,
                trace_id: 7,
                class: 3,
            },
            Response::Error {
                id: 3,
                trace_id: 0,
                code: ErrorCode::Overloaded,
                message: "busy".into(),
            },
        ];
        let mut scratch = vec![0xAAu8; 64]; // dirty: must be cleared
        for response in &responses {
            let mut reference = Vec::new();
            write_frame(&mut reference, &encode_response(response)).unwrap();
            encode_response_frame_into(response, &mut scratch);
            assert_eq!(scratch, reference);
        }
    }

    #[test]
    fn errors_display_cleanly() {
        let errors: Vec<WireError> = vec![
            WireError::Truncated {
                offset: 3,
                field: "magic",
            },
            WireError::BadMagic,
            WireError::BadVersion(9),
            WireError::BadTag {
                field: "kind",
                value: 7,
            },
            WireError::TooLarge {
                field: "n_features",
                value: 1 << 30,
                cap: MAX_FEATURES,
            },
            WireError::Trailing {
                offset: 10,
                count: 2,
            },
            WireError::BadUtf8,
            WireError::Io(io::Error::other("boom")),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
