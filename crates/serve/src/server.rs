//! The readiness-driven, micro-batching TCP inference server.
//!
//! ## Architecture
//!
//! ```text
//!  reactor threads (epoll/poll readiness loop, one Poller each)
//!    reactor 0 also owns the listener + tiered admission control
//!        │  nonblocking reads → FrameDecoder reassembly
//!        │  pings answered inline; predicts enqueued
//!        ▼
//!  bounded request queue (Mutex<VecDeque> + Condvar)
//!        │  full → immediate Overloaded rejection
//!        ▼
//!  N batch workers: pop ≤ max_batch requests per wakeup, drop
//!  deadline-expired ones with DeadlineExceeded, run
//!  Classifier::predict_batch on the rest, write responses inline on
//!  each connection (nonblocking); bytes the kernel refuses go to the
//!  connection's outbox and its reactor flushes them on EPOLLOUT
//! ```
//!
//! A connection costs one epoll registration plus its reassembly
//! buffer — no thread — so the server holds tens of thousands of
//! concurrent connections (bounded by [`ServeConfig::max_conns`]),
//! where the previous thread-per-connection reader design stalled at a
//! few hundred. See DESIGN.md §13 for the reactor architecture, the
//! four admission-control tiers, and the drain protocol.
//!
//! Batching is opportunistic: a worker takes whatever has accumulated in
//! the queue (up to [`ServeConfig::max_batch`]) in one lock acquisition,
//! so under light load requests run solo with no added latency, and under
//! concurrent load batches form naturally while workers are busy.
//!
//! ## Correctness contract
//!
//! Responses are **bit-identical** to direct single-threaded
//! [`Classifier::predict`] calls on the same model, regardless of worker
//! count, reactor count, batch size, or request interleaving: the
//! classifier trait guarantees `predict_batch` equals a serial `predict`
//! map, and the server never reorders a request's features or mutates
//! the model (`tests/serve_differential.rs` pins this across the wire).
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a [`Request::Shutdown`] frame) sets
//! the shutdown flag and wakes every reactor and worker — purely
//! event-driven, so it works on any bind address (`0.0.0.0` included).
//! Reactors close the listener and park all reads; workers drain the
//! queue and exit; [`ServerHandle::join`] then flags the drain and the
//! reactors flush remaining outboxes (bounded by a grace period) and
//! exit.
//!
//! ## Tracing and telemetry
//!
//! When metrics are enabled the server records stage histograms
//! (`serve/decode`, `serve/queue_wait`, `serve/batch`, `serve/encode`,
//! `serve/request`) and, when the trace ring is also enabled
//! (`obs::trace::set_enabled`), emits begin/end trace events for every
//! request that carried a non-zero client trace id — one
//! `decode → queue_wait → batch_assembly → predict → encode` chain per
//! request, keyed by that id, exportable as Chrome trace-event JSON.
//! Model-quality drift signals ride the same switch: a top1−top2 score
//! margin histogram (`serve/margin`, micro-units), per-class prediction
//! counters (`serve.predicted.<class>`), and the kernel fallback
//! counters ticked inside the model's score path. All of it is
//! observation only — the batched predict path and its bit-identity
//! contract are untouched.
//!
//! ## Online training and model hot-swap
//!
//! [`start_online`] additionally spawns one **trainer thread** owning a
//! [`lookhd::StreamingTrainer`]. `LHF1` feedback frames are folded into
//! its live counters off the hot path; a `refresh` frame (or the
//! drift-gated automatic trigger, see [`OnlineConfig`]) materializes a
//! full model version — compress, kernel rebuild — and swaps it into
//! the shared [`ModelSlot`] atomically. Workers load the slot **once
//! per batch**, so every in-flight batch finishes on the version it
//! started with while the next batch picks up the fresh model; stamped
//! predict frames echo the serving version so clients (and the soak
//! tests) can pin each answer to the exact model that produced it.
//! See DESIGN.md §14 for the fold ≡ batch argument and the swap
//! protocol.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lookhd::{LookHdClassifier, StreamingTrainer};
use netpoll::{Mode, Poller};
use obs::trace::{self, Phase};

use crate::conn::Conn;
use crate::model::{ModelSlot, SharedClassifier, VersionedModel};
use crate::reactor::{Reactor, ReactorQueue};
use crate::slo::{HealthState, SloConfig};
use crate::wire::{ErrorCode, Response};

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Batch worker thread count (`0` = the host's available
    /// parallelism). Each worker runs whole batches, so this is the
    /// server's inference parallelism.
    pub workers: usize,
    /// Most requests a worker coalesces into one
    /// [`hdc::Classifier::predict_batch`] call.
    pub max_batch: usize,
    /// Bound on the request queue; a full queue rejects new requests
    /// with [`ErrorCode::Overloaded`] instead of growing without limit.
    pub queue_cap: usize,
    /// Per-request deadline, measured from enqueue to worker pickup. A
    /// request that waits longer is dropped with
    /// [`ErrorCode::DeadlineExceeded`] without running inference.
    pub timeout: Duration,
    /// Reactor (I/O event loop) thread count. One reactor drives
    /// thousands of connections; more split the descriptor set
    /// round-robin.
    pub reactors: usize,
    /// Most connections held open at once; the accept path answers the
    /// excess with one [`ErrorCode::Overloaded`] frame and closes
    /// (admission tier 1).
    pub max_conns: usize,
    /// Service-level objectives judged by the server's
    /// [`HealthState`] (exposed through [`ServerHandle::health`] and,
    /// via the CLI, the admin `/healthz` + `/slo.json` routes). The
    /// default declares none.
    pub slo: SloConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 16,
            queue_cap: 1024,
            timeout: Duration::from_secs(1),
            reactors: 1,
            max_conns: 8192,
            slo: SloConfig::new(),
        }
    }
}

impl ServeConfig {
    /// The default configuration (1 worker, batches of ≤ 16, queue of
    /// 1024, 1 s deadline, 1 reactor, 8192 connections).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum batch size (clamped up to 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the queue bound (clamped up to 1).
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap.max(1);
        self
    }

    /// Sets the per-request deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the reactor thread count (clamped up to 1).
    pub fn with_reactors(mut self, reactors: usize) -> Self {
        self.reactors = reactors.max(1);
        self
    }

    /// Sets the connection cap (clamped up to 1).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Declares the service-level objectives the server's health state
    /// judges against.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    /// The worker count a server will actually spawn.
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// Tuning knobs of the online-training path (see [`start_online`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Automatic refresh gate: once at least this many feedback frames
    /// have been folded since the last swap **and** the drift score
    /// crosses [`OnlineConfig::drift_threshold`], the trainer thread
    /// materializes and swaps a new model version on its own. `0`
    /// disables automatic refresh — swaps happen only on explicit
    /// `refresh` frames (the mode the deterministic tests use).
    pub auto_refresh_min_folds: usize,
    /// Minimum drift score in `[0, 1]` required for an automatic
    /// refresh: half the L1 distance between the per-class distribution
    /// of *predictions* served since the last swap and the per-class
    /// distribution of feedback *labels* folded since then (the PR 5
    /// model-quality signals, read as a scalar). `0.0` makes the fold
    /// count alone trigger the swap.
    pub drift_threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            auto_refresh_min_folds: 0,
            drift_threshold: 0.25,
        }
    }
}

impl OnlineConfig {
    /// Manual-refresh-only defaults (`auto_refresh_min_folds = 0`,
    /// `drift_threshold = 0.25`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the automatic-refresh fold gate (`0` = manual only).
    pub fn with_auto_refresh_min_folds(mut self, folds: usize) -> Self {
        self.auto_refresh_min_folds = folds;
        self
    }

    /// Sets the drift-score gate (clamped into `[0, 1]`).
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold.clamp(0.0, 1.0);
        self
    }
}

/// One queued predict request.
pub(crate) struct Pending {
    id: u64,
    /// Client-supplied trace id (`0` = untraced): echoed in the response
    /// and stamped on every trace event this request emits.
    trace_id: u64,
    features: Vec<f64>,
    /// Whether the client asked for a version-stamped answer
    /// (`LHF1` kind 3): the response carries the serving model version.
    stamped: bool,
    enqueued: Instant,
    /// Trace-clock timestamp of the enqueue (`0` when tracing is off);
    /// the begin edge of the `queue_wait` span.
    enqueued_ns: u64,
    conn: Arc<Conn>,
}

impl Pending {
    /// Emits one begin/end trace pair stamped with this request's trace
    /// id, when both the ring and the id are live.
    fn trace_pair(&self, name: &'static str, begin_ns: u64, end_ns: u64) {
        if self.trace_id != 0 && trace::enabled() {
            trace::emit_at(name, self.trace_id, Phase::Begin, begin_ns);
            trace::emit_at(name, self.trace_id, Phase::End, end_ns);
        }
    }

    /// Sends the one response every queued request is owed, retiring
    /// its in-flight slot on the connection.
    fn respond(&self, response: &Response) {
        self.conn.send(response);
        self.conn.finish_request();
    }
}

/// One command routed off the reactor threads to the trainer thread.
pub(crate) enum TrainCmd {
    /// Fold one labelled example into the live counters and ack.
    Feedback {
        /// Connection owed the [`Response::FeedbackAck`].
        conn: Arc<Conn>,
        /// Client request id, echoed in the ack.
        id: u64,
        /// Client trace id, echoed in the ack.
        trace_id: u64,
        /// Ground-truth class label.
        label: u32,
        /// Feature vector, same shape as a predict request.
        features: Vec<f64>,
    },
    /// Materialize the counters into a full model and swap it live.
    Refresh {
        /// Connection owed the [`Response::RefreshAck`].
        conn: Arc<Conn>,
        /// Client request id, echoed in the ack.
        id: u64,
        /// Client trace id, echoed in the ack.
        trace_id: u64,
    },
}

impl TrainCmd {
    fn conn(&self) -> &Arc<Conn> {
        match self {
            TrainCmd::Feedback { conn, .. } | TrainCmd::Refresh { conn, .. } => conn,
        }
    }

    fn ids(&self) -> (u64, u64) {
        match self {
            TrainCmd::Feedback { id, trace_id, .. } | TrainCmd::Refresh { id, trace_id, .. } => {
                (*id, *trace_id)
            }
        }
    }
}

/// Shared state of the online-training path: the trainer thread's
/// command queue plus the per-window drift signals feeding the
/// automatic-refresh gate.
pub(crate) struct OnlineState {
    config: OnlineConfig,
    queue: Mutex<VecDeque<TrainCmd>>,
    ready: Condvar,
    /// Per-class counts of predictions served since the last swap
    /// (ticked by the workers; one half of the drift score).
    predicted: Vec<AtomicU64>,
    /// Per-class counts of feedback labels folded since the last swap
    /// (ticked by the trainer thread; the other half).
    observed: Vec<AtomicU64>,
    /// Feedback frames folded since the last swap (the fold gate).
    folds_since_swap: AtomicU64,
}

impl OnlineState {
    fn new(config: OnlineConfig, n_classes: usize) -> Self {
        Self {
            config,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            predicted: (0..n_classes).map(|_| AtomicU64::new(0)).collect(),
            observed: (0..n_classes).map(|_| AtomicU64::new(0)).collect(),
            folds_since_swap: AtomicU64::new(0),
        }
    }

    /// Ticks the served-prediction half of the drift window (classes
    /// beyond the model's range — impossible for a real model — are
    /// ignored rather than indexed).
    fn note_predicted(&self, class: usize) {
        if let Some(slot) = self.predicted.get(class) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Half the L1 distance between the normalized served-prediction
    /// and feedback-label class distributions for the current window:
    /// `0.0` when they agree exactly, `1.0` when they are disjoint.
    /// Either side empty means no signal (`0.0`).
    fn drift_score(&self) -> f64 {
        let predicted: Vec<u64> = self
            .predicted
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let observed: Vec<u64> = self
            .observed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let (p_total, o_total): (u64, u64) = (predicted.iter().sum(), observed.iter().sum());
        if p_total == 0 || o_total == 0 {
            return 0.0;
        }
        predicted
            .iter()
            .zip(&observed)
            .map(|(&p, &o)| (p as f64 / p_total as f64 - o as f64 / o_total as f64).abs())
            .sum::<f64>()
            / 2.0
    }

    /// Resets the drift window after a swap.
    fn reset_window(&self) {
        for slot in self.predicted.iter().chain(&self.observed) {
            slot.store(0, Ordering::Relaxed);
        }
        self.folds_since_swap.store(0, Ordering::Relaxed);
    }
}

/// State shared by the reactors and workers.
pub(crate) struct Inner {
    pub(crate) model: ModelSlot,
    /// Present iff this server was started with [`start_online`].
    pub(crate) online: Option<OnlineState>,
    pub(crate) config: ServeConfig,
    pub(crate) local_addr: SocketAddr,
    pub(crate) queue: Mutex<VecDeque<Pending>>,
    pub(crate) work_ready: Condvar,
    pub(crate) shutdown: AtomicBool,
    /// Set by [`ServerHandle::join`] once the workers have exited: the
    /// reactors flush what remains and stop.
    pub(crate) drained: AtomicBool,
    /// Live connections across all reactors (admission tier 1).
    pub(crate) conn_count: AtomicUsize,
    /// Monotonic connection-token source (tokens never recycle, so a
    /// stale command can never act on the wrong connection).
    pub(crate) next_token: AtomicU64,
    /// Every reactor's command queue + waker, for shutdown broadcast.
    pub(crate) reactor_queues: Vec<Arc<ReactorQueue>>,
    /// SLO-aware health shared with the admin listener; the draining
    /// bit flips with [`Inner::trigger_shutdown`].
    pub(crate) health: Arc<HealthState>,
}

impl Inner {
    /// Idempotent, event-driven shutdown trigger: sets the flag and
    /// wakes every reactor (they close the listener and park reads) and
    /// every worker (they drain the queue and exit). No self-connect —
    /// this works on any bind address, `0.0.0.0` included.
    pub(crate) fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Health degrades before any reactor learns of the shutdown: a
        // load balancer probing /healthz sees `draining` while queued
        // requests are still being answered.
        self.health.set_draining();
        for queue in &self.reactor_queues {
            queue.wake();
        }
        self.work_ready.notify_all();
        if let Some(online) = &self.online {
            online.ready.notify_all();
        }
    }

    /// Enqueues one predict request, or answers immediately with a
    /// backpressure/shutdown rejection. The shutdown check happens under
    /// the queue lock so no request can slip in after the workers'
    /// drain-and-exit decision.
    pub(crate) fn enqueue(
        &self,
        conn: &Arc<Conn>,
        id: u64,
        trace_id: u64,
        features: Vec<f64>,
        stamped: bool,
    ) {
        let depth = {
            let mut queue = self.queue.lock().expect("queue lock poisoned");
            if self.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                conn.send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                });
                obs::counter("serve.responses.error", 1);
                return;
            }
            if queue.len() >= self.config.queue_cap {
                drop(queue);
                obs::counter("serve.overload_rejections", 1);
                obs::counter("serve.responses.error", 1);
                conn.send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::Overloaded,
                    message: format!("request queue full ({} pending)", self.config.queue_cap),
                });
                return;
            }
            conn.begin_request();
            queue.push_back(Pending {
                id,
                trace_id,
                features,
                stamped,
                enqueued: Instant::now(),
                enqueued_ns: if trace_id != 0 && trace::enabled() {
                    trace::now_ns()
                } else {
                    0
                },
                conn: Arc::clone(conn),
            });
            queue.len()
        };
        obs::counter("serve.requests", 1);
        if obs::enabled() {
            // Dimensionless histogram: depth n recorded as n ns (see
            // DESIGN.md §9).
            obs::record("serve/queue_depth", Duration::from_nanos(depth as u64));
        }
        self.work_ready.notify_one();
    }

    /// Routes one feedback/refresh command to the trainer thread, or
    /// answers immediately when online training is disabled, the server
    /// is shutting down, or the trainer queue is full. Mirrors the
    /// predict queue's backpressure contract (same cap, same
    /// [`ErrorCode::Overloaded`] rejection).
    pub(crate) fn enqueue_train(&self, cmd: TrainCmd) {
        let (id, trace_id) = cmd.ids();
        let Some(online) = &self.online else {
            obs::counter("serve.responses.error", 1);
            cmd.conn().send(&Response::Error {
                id,
                trace_id,
                code: ErrorCode::BadRequest,
                message: "online training is not enabled on this server".into(),
            });
            return;
        };
        {
            let mut queue = online.queue.lock().expect("trainer queue lock poisoned");
            if self.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                obs::counter("serve.responses.error", 1);
                cmd.conn().send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                });
                return;
            }
            if queue.len() >= self.config.queue_cap {
                drop(queue);
                obs::counter("serve.overload_rejections", 1);
                obs::counter("serve.responses.error", 1);
                cmd.conn().send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::Overloaded,
                    message: format!("trainer queue full ({} pending)", self.config.queue_cap),
                });
                return;
            }
            cmd.conn().begin_request();
            queue.push_back(cmd);
        }
        obs::counter("serve.requests", 1);
        online.ready.notify_one();
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] and [`ServerHandle::join`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The trainer thread, when started with [`start_online`].
    trainer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Triggers a graceful shutdown: no new connections or requests are
    /// accepted, queued requests are still answered. Idempotent; does
    /// not block — call [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }

    /// Whether a shutdown has been triggered (locally or by a
    /// [`Request::Shutdown`] frame).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// The version currently being served (`1` until the first swap).
    pub fn model_version(&self) -> u64 {
        self.inner.model.version()
    }

    /// The server's SLO-aware health state, for wiring into
    /// [`crate::admin::start_admin_with`]: it reflects the configured
    /// objectives ([`ServeConfig::slo`]) and flips to draining the
    /// moment a shutdown is triggered.
    pub fn health(&self) -> Arc<HealthState> {
        Arc::clone(&self.inner.health)
    }

    /// Blocks until the server has shut down (via [`ServerHandle::shutdown`]
    /// or a remote shutdown frame) and every thread has exited: the
    /// workers first (they drain the queue), then the trainer thread
    /// (when online training is on), then the reactors (they flush
    /// every connection's remaining response bytes, bounded by a grace
    /// period, and close).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The trainer drains its own command queue the same way the
        // workers drain theirs.
        if let Some(trainer) = self.trainer.take() {
            let _ = trainer.join();
        }
        // The workers have answered everything that will ever be
        // answered; tell the reactors to flush and exit.
        self.inner.drained.store(true, Ordering::SeqCst);
        for queue in &self.inner.reactor_queues {
            queue.wake();
        }
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
    }
}

/// Binds `addr` and starts serving `model`. Returns once the listener is
/// live; use the handle to discover the bound port (`addr` may be
/// `127.0.0.1:0`), trigger shutdown, and join.
///
/// # Errors
///
/// Returns bind and event-loop setup errors; everything after startup
/// is reported per-connection over the wire.
pub fn start<A: ToSocketAddrs>(
    addr: A,
    model: SharedClassifier,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    start_impl(addr, model, config, None)
}

/// Binds `addr` and starts serving `classifier` **with online training
/// enabled**: `LHF1` feedback frames fold into a live
/// [`lookhd::StreamingTrainer`] seeded from the classifier's encoder and
/// configuration, and `refresh` frames (or the drift-gated automatic
/// trigger) materialize and hot-swap new model versions without
/// interrupting traffic.
///
/// # Errors
///
/// Returns bind/event-loop setup errors, and an
/// [`io::ErrorKind::InvalidInput`] error when a streaming trainer cannot
/// be derived from the classifier.
pub fn start_online<A: ToSocketAddrs>(
    addr: A,
    classifier: LookHdClassifier,
    config: ServeConfig,
    online: OnlineConfig,
) -> io::Result<ServerHandle> {
    let trainer = StreamingTrainer::from_classifier(&classifier)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    start_impl(addr, Arc::new(classifier), config, Some((trainer, online)))
}

/// Binds `n` `SO_REUSEPORT` listeners sharing one address so the kernel can
/// shard incoming connections across reactor threads by flow hash.
///
/// The first listener may bind an ephemeral port; the remaining `n - 1` bind
/// to its concrete resolved address. Returns `None` when the platform (or
/// the address) does not support `SO_REUSEPORT`, in which case the caller
/// falls back to a single shared listener owned by reactor 0.
fn try_reuseport_listeners(
    addrs: &[SocketAddr],
    n: usize,
) -> Option<(Vec<TcpListener>, SocketAddr)> {
    let first = addrs
        .iter()
        .find_map(|addr| netpoll::reuseport_listener(*addr).ok())?;
    let local_addr = first.local_addr().ok()?;
    let mut listeners = Vec::with_capacity(n);
    listeners.push(first);
    for _ in 1..n {
        listeners.push(netpoll::reuseport_listener(local_addr).ok()?);
    }
    Some((listeners, local_addr))
}

fn start_impl<A: ToSocketAddrs>(
    addr: A,
    model: SharedClassifier,
    config: ServeConfig,
    online: Option<(StreamingTrainer, OnlineConfig)>,
) -> io::Result<ServerHandle> {
    let addr_list: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let n_reactors = config.reactors.max(1);
    // Accept sharding: with multiple reactors, give each its own
    // SO_REUSEPORT listener so accepts spread across threads without a
    // shared accept lock. Falls back to one listener on reactor 0.
    let (mut listeners, local_addr, sharded) = match try_reuseport_listeners(&addr_list, n_reactors)
    {
        Some((listeners, local_addr)) if n_reactors > 1 => {
            let listeners = listeners.into_iter().map(Some).collect::<Vec<_>>();
            (listeners, local_addr, true)
        }
        Some((mut listeners, local_addr)) => {
            // Single reactor: REUSEPORT adds nothing; keep the one socket.
            let first = listeners.drain(..1).next();
            (vec![first], local_addr, false)
        }
        None => {
            let listener = TcpListener::bind(&addr_list[..])?;
            let local_addr = listener.local_addr()?;
            let mut listeners: Vec<Option<TcpListener>> = Vec::with_capacity(n_reactors);
            listeners.push(Some(listener));
            listeners.resize_with(n_reactors, || None);
            (listeners, local_addr, false)
        }
    };
    if sharded {
        obs::counter("serve.accept_shards", n_reactors as u64);
    }
    // Surface which scoring kernel actually serves (automatic selection
    // may have silently fallen back) in the admin counter snapshot.
    if let Some(name) = model.kernel_name() {
        obs::counter(&format!("kernel.active.{name}"), 1);
    }

    let mut pollers = Vec::with_capacity(n_reactors);
    let mut queues = Vec::with_capacity(n_reactors);
    for _ in 0..n_reactors {
        let poller = Poller::with_mode(Mode::Edge)?;
        queues.push(Arc::new(ReactorQueue::new(poller.waker())));
        pollers.push(poller);
    }

    let (trainer, online_state) = match online {
        Some((trainer, online_config)) => {
            // Start the monotonic `model.version` counter at the live
            // version (1) so the admin snapshot always equals the
            // version stamped on responses.
            obs::counter("model.version", 1);
            let n_classes = trainer.n_classes();
            (
                Some(trainer),
                Some(OnlineState::new(online_config, n_classes)),
            )
        }
        None => (None, None),
    };

    let inner = Arc::new(Inner {
        model: ModelSlot::new(model),
        online: online_state,
        config,
        local_addr,
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        drained: AtomicBool::new(false),
        conn_count: AtomicUsize::new(0),
        next_token: AtomicU64::new(0),
        reactor_queues: queues.clone(),
        health: Arc::new(HealthState::new(config.slo)),
    });

    let workers = (0..config.effective_workers())
        .map(|worker| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner, worker))
        })
        .collect();

    let trainer = trainer.map(|trainer| {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || trainer_loop(&inner, trainer))
    });

    let reactors = pollers
        .into_iter()
        .enumerate()
        .map(|(i, poller)| {
            let reactor = Reactor::new(
                i,
                Arc::clone(&inner),
                poller,
                Arc::clone(&queues[i]),
                listeners[i].take(), // sharded: every reactor; else reactor 0
                sharded,
                queues.clone(),
            );
            std::thread::spawn(move || reactor.run())
        })
        .collect();

    Ok(ServerHandle {
        inner,
        reactors,
        workers,
        trainer,
    })
}

/// Pops batches off the queue until shutdown *and* the queue is drained.
///
/// `worker` is the thread's index within the pool; it pre-interns its
/// `serve.worker.batches{worker=}` handle once, so attributing batches
/// to workers costs one id-indexed bump per batch.
fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    let batches_id =
        obs::intern_counter("serve.worker.batches", &[("worker", &worker.to_string())]);
    loop {
        let batch: Vec<Pending> = {
            let mut queue = inner.queue.lock().expect("queue lock poisoned");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.work_ready.wait(queue).expect("queue lock poisoned");
            }
            let take = queue.len().min(inner.config.max_batch);
            queue.drain(..take).collect()
        };
        obs::counter_id(batches_id, 1);
        process_batch(inner, batch);
    }
}

/// The trainer thread: folds feedback into the live counters, answers
/// acks, and performs manual + drift-gated automatic hot-swaps. Exits
/// only once shutdown is triggered *and* its command queue is drained,
/// so every accepted feedback/refresh frame gets its answer.
fn trainer_loop(inner: &Arc<Inner>, mut trainer: StreamingTrainer) {
    let online = inner
        .online
        .as_ref()
        .expect("trainer thread without online state");
    loop {
        let cmd = {
            let mut queue = online.queue.lock().expect("trainer queue lock poisoned");
            loop {
                if let Some(cmd) = queue.pop_front() {
                    break cmd;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = online
                    .ready
                    .wait(queue)
                    .expect("trainer queue lock poisoned");
            }
        };
        match cmd {
            TrainCmd::Feedback {
                conn,
                id,
                trace_id,
                label,
                features,
            } => {
                let _span = obs::span("serve_feedback");
                match trainer.observe(&features, label as usize) {
                    Ok(()) => {
                        obs::counter("train.feedback", 1);
                        obs::counter(&format!("train.observed.{label}"), 1);
                        if let Some(slot) = online.observed.get(label as usize) {
                            slot.fetch_add(1, Ordering::Relaxed);
                        }
                        let folds = online.folds_since_swap.fetch_add(1, Ordering::Relaxed) + 1;
                        obs::counter("serve.responses.ok", 1);
                        conn.send(&Response::FeedbackAck {
                            id,
                            trace_id,
                            version: inner.model.version(),
                            observed: trainer.observed(),
                        });
                        conn.finish_request();
                        maybe_auto_refresh(inner, online, &trainer, folds);
                    }
                    Err(e) => {
                        obs::counter("serve.responses.error", 1);
                        conn.send(&Response::Error {
                            id,
                            trace_id,
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        });
                        conn.finish_request();
                    }
                }
            }
            TrainCmd::Refresh { conn, id, trace_id } => match swap_model(inner, online, &trainer) {
                Ok(version) => {
                    obs::counter("serve.responses.ok", 1);
                    conn.send(&Response::RefreshAck {
                        id,
                        trace_id,
                        version,
                    });
                    conn.finish_request();
                }
                Err(message) => {
                    obs::counter("serve.responses.error", 1);
                    conn.send(&Response::Error {
                        id,
                        trace_id,
                        code: ErrorCode::Internal,
                        message,
                    });
                    conn.finish_request();
                }
            },
        }
    }
}

/// Materializes the trainer's counters into a full model (compress +
/// kernel rebuild) and swaps it into the slot. In-flight batches keep
/// the version they loaded; the next batch pop serves the new one.
fn swap_model(
    inner: &Arc<Inner>,
    online: &OnlineState,
    trainer: &StreamingTrainer,
) -> Result<u64, String> {
    let _span = obs::span("serve_model_swap");
    let classifier = trainer.materialize().map_err(|e| e.to_string())?;
    let version = inner.model.swap(Arc::new(classifier));
    obs::counter("serve.model_swaps", 1);
    obs::counter("model.version", 1);
    online.reset_window();
    version_log(version);
    Ok(version)
}

/// Marker counter so a swap's version is greppable in the admin
/// snapshot history even after further swaps (`serve.swapped_to.<v>`).
fn version_log(version: u64) {
    obs::counter(&format!("serve.swapped_to.{version}"), 1);
}

/// Drift-gated automatic refresh: fires when enough feedback has been
/// folded since the last swap and the served-vs-observed class
/// distributions have diverged past the configured threshold.
fn maybe_auto_refresh(
    inner: &Arc<Inner>,
    online: &OnlineState,
    trainer: &StreamingTrainer,
    folds_since_swap: u64,
) {
    let gate = online.config.auto_refresh_min_folds;
    if gate == 0 || (folds_since_swap as usize) < gate {
        return;
    }
    if online.drift_score() < online.config.drift_threshold {
        return;
    }
    if swap_model(inner, online, trainer).is_ok() {
        obs::counter("serve.model_swaps.auto", 1);
    }
}

fn process_batch(inner: &Arc<Inner>, batch: Vec<Pending>) {
    // One slot load per batch: every request in this batch is answered
    // by the same model version, and a concurrent hot-swap only affects
    // batches popped after it.
    let model = inner.model.load();
    // Expire requests that waited past their deadline before spending any
    // inference time on them; expiry frees their queue slots for free.
    let now = Instant::now();
    let pop_ns = if obs::enabled() { trace::now_ns() } else { 0 };
    let mut live = Vec::with_capacity(batch.len());
    for pending in batch {
        if obs::enabled() {
            obs::record("serve/queue_wait", now.duration_since(pending.enqueued));
            if pending.enqueued_ns != 0 {
                pending.trace_pair("queue_wait", pending.enqueued_ns, pop_ns);
            }
        }
        if now.duration_since(pending.enqueued) > inner.config.timeout {
            obs::counter("serve.deadline_misses", 1);
            obs::counter("serve.responses.error", 1);
            pending.respond(&Response::Error {
                id: pending.id,
                trace_id: pending.trace_id,
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "request waited past the {} ms deadline",
                    inner.config.timeout.as_millis()
                ),
            });
            continue;
        }
        live.push(pending);
    }
    if live.is_empty() {
        return;
    }

    obs::counter("serve.batches", 1);
    if obs::enabled() {
        // Dimensionless histogram: batch of n recorded as n ns.
        obs::record("serve/batch_size", Duration::from_nanos(live.len() as u64));
    }

    let features: Vec<Vec<f64>> = live
        .iter_mut()
        .map(|p| std::mem::take(&mut p.features))
        .collect();
    let started = Instant::now();
    let predict_begin_ns = if obs::enabled() { trace::now_ns() } else { 0 };
    if obs::enabled() {
        // Batch assembly = everything between queue pop and the predict
        // call: expiry checks and feature gathering.
        for pending in &live {
            pending.trace_pair("batch_assembly", pop_ns, predict_begin_ns);
        }
    }
    match model.classifier().predict_batch(&features) {
        Ok(predictions) => {
            if obs::enabled() {
                obs::record("serve/batch", started.elapsed());
                let predict_end_ns = trace::now_ns();
                for pending in &live {
                    pending.trace_pair("predict", predict_begin_ns, predict_end_ns);
                }
                record_quality_signals(&model, &features, &predictions);
            }
            if let Some(online) = &inner.online {
                for &class in &predictions {
                    online.note_predicted(class);
                }
            }
            for (pending, class) in live.iter().zip(predictions) {
                respond_ok(pending, class, &model);
            }
        }
        // The batch call propagates its *first* error, which would
        // poison every request sharing the batch; fall back to
        // per-request predictions so one bad feature vector only fails
        // its own request.
        Err(_) => {
            for (pending, feats) in live.iter().zip(&features) {
                match model.classifier().predict(feats) {
                    Ok(class) => {
                        if let Some(online) = &inner.online {
                            online.note_predicted(class);
                        }
                        respond_ok(pending, class, &model);
                    }
                    Err(e) => {
                        obs::counter("serve.responses.error", 1);
                        pending.respond(&Response::Error {
                            id: pending.id,
                            trace_id: pending.trace_id,
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// Scale for the `serve/margin` histogram: a top1−top2 score margin of
/// `m` is recorded as `m × 1e6` dimensionless "nanoseconds", giving six
/// decimal digits of margin resolution inside integer buckets.
pub const MARGIN_SCALE: f64 = 1e6;

/// Records the model-quality drift signals for one successfully
/// predicted batch: per-class prediction counters and the top1−top2
/// score margin histogram. Runs only when metrics are enabled — the
/// margin needs a second [`hdc::Classifier::class_scores`] pass, which
/// must cost nothing when observability is off.
///
/// Per-class counts go to the dimensional `serve.predicted{class=}`
/// family through the version's pre-interned handles: no `format!`
/// allocation per prediction, and a model with more classes than the
/// registry's per-name label-set cap tallies the overflow visibly in
/// `obs.dropped_names` instead of silently exhausting the name table.
fn record_quality_signals(model: &VersionedModel, features: &[Vec<f64>], predictions: &[usize]) {
    for &class in predictions {
        obs::counter_id(model.predicted_id(class), 1);
    }
    for feats in features {
        match model.classifier().class_scores(feats) {
            Ok(Some(scores)) if scores.len() >= 2 => {
                let mut top1 = f64::NEG_INFINITY;
                let mut top2 = f64::NEG_INFINITY;
                for &s in &scores {
                    if s > top1 {
                        top2 = top1;
                        top1 = s;
                    } else if s > top2 {
                        top2 = s;
                    }
                }
                let margin = (top1 - top2).max(0.0);
                if margin.is_finite() {
                    obs::record(
                        "serve/margin",
                        Duration::from_nanos((margin * MARGIN_SCALE) as u64),
                    );
                }
            }
            // Score-less models (or a scoring error) simply contribute no
            // margin samples; the counter keeps the gap visible.
            _ => obs::counter("serve.margin_unavailable", 1),
        }
    }
}

fn respond_ok(pending: &Pending, class: usize, model: &VersionedModel) {
    // A class label the wire cannot carry is a server-side fault, not a
    // plausible-looking answer: report it as Internal instead of
    // clamping to u32::MAX.
    let Ok(class) = u32::try_from(class) else {
        obs::counter("serve.class_overflows", 1);
        obs::counter("serve.responses.error", 1);
        pending.respond(&Response::Error {
            id: pending.id,
            trace_id: pending.trace_id,
            code: ErrorCode::Internal,
            message: format!("predicted class {class} exceeds the wire's u32 range"),
        });
        return;
    };
    obs::counter("serve.responses.ok", 1);
    if obs::enabled() {
        // The dimensional response counter: kernel + model_version
        // labels ride the version's pre-interned handle, so the labels
        // flip atomically with the hot-swap.
        obs::counter_id(model.predictions_id(), 1);
        // Traced end-to-end latency: a tail-bucket hit captures the
        // request's trace id as an OpenMetrics exemplar.
        obs::record_traced(
            "serve/request",
            pending.enqueued.elapsed(),
            pending.trace_id,
        );
    }
    let response = if pending.stamped {
        Response::PredictStamped {
            id: pending.id,
            trace_id: pending.trace_id,
            class,
            version: model.version(),
        }
    } else {
        Response::Predict {
            id: pending.id,
            trace_id: pending.trace_id,
            class,
        }
    };
    if obs::enabled() {
        let encode_begin_ns = trace::now_ns();
        let started = Instant::now();
        pending.respond(&response);
        obs::record("serve/encode", started.elapsed());
        pending.trace_pair("encode", encode_begin_ns, trace::now_ns());
    } else {
        pending.respond(&response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::wire::Request;
    use hdc::{HdcError, Result};

    /// Classifies by sign of the first feature; errors on empty input.
    struct SignStub;

    impl hdc::Classifier for SignStub {
        fn num_classes(&self) -> usize {
            2
        }

        fn predict(&self, features: &[f64]) -> Result<usize> {
            match features.first() {
                Some(&v) => Ok(usize::from(v >= 0.0)),
                None => Err(HdcError::invalid_dataset("empty feature vector")),
            }
        }
    }

    /// Always predicts a class that cannot fit in the wire's u32 field.
    struct OverflowStub;

    impl hdc::Classifier for OverflowStub {
        fn num_classes(&self) -> usize {
            usize::MAX
        }

        fn predict(&self, _features: &[f64]) -> Result<usize> {
            Ok(u32::MAX as usize + 1)
        }
    }

    fn start_stub(config: ServeConfig) -> ServerHandle {
        start("127.0.0.1:0", Arc::new(SignStub), config).expect("bind failed")
    }

    #[test]
    fn serves_predictions_and_pings() {
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict(1, &[2.5]).unwrap(),
            Response::Predict {
                id: 1,
                trace_id: 0,
                class: 1
            }
        );
        assert_eq!(
            client.predict(2, &[-2.5]).unwrap(),
            Response::Predict {
                id: 2,
                trace_id: 0,
                class: 0
            }
        );
        assert_eq!(client.ping(3).unwrap(), Response::Pong { id: 3 });
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn serves_across_multiple_reactors() {
        let handle = start_stub(ServeConfig::new().with_reactors(3).with_workers(2));
        let mut clients: Vec<Client> = (0..8)
            .map(|_| Client::connect(handle.addr()).unwrap())
            .collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let id = i as u64 + 1;
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(
                client.predict(id, &[sign]).unwrap(),
                Response::Predict {
                    id,
                    trace_id: 0,
                    class: u32::from(i % 2 == 0),
                }
            );
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn traced_requests_echo_the_trace_id() {
        // Tracing on the server side is *not* enabled here: the echo is a
        // pure wire-level contract and must hold regardless.
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict_traced(1, 0xfeed, &[2.5]).unwrap(),
            Response::Predict {
                id: 1,
                trace_id: 0xfeed,
                class: 1
            }
        );
        // Bad requests echo it too.
        match client.predict_traced(2, 0xbeef, &[]).unwrap() {
            Response::Error {
                id, trace_id, code, ..
            } => {
                assert_eq!((id, trace_id, code), (2, 0xbeef, ErrorCode::BadRequest));
            }
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_feature_vectors_fail_alone_in_a_batch() {
        let handle = start_stub(ServeConfig::new().with_max_batch(8));
        let mut client = Client::connect(handle.addr()).unwrap();
        // Pipeline a good, an empty (model-rejected), and another good
        // request so they can share a batch.
        client
            .send(&Request::Predict {
                id: 1,
                trace_id: 0,
                features: vec![1.0],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 2,
                trace_id: 0,
                features: vec![],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 3,
                trace_id: 0,
                features: vec![-1.0],
            })
            .unwrap();
        let mut ok = 0;
        let mut errors = 0;
        for _ in 0..3 {
            match client.recv().unwrap() {
                Response::Predict { id, class, .. } => {
                    ok += 1;
                    assert_eq!(class, usize::from(id == 1) as u32);
                }
                Response::Error { id, code, .. } => {
                    errors += 1;
                    assert_eq!(id, 2);
                    assert_eq!(code, ErrorCode::BadRequest);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!((ok, errors), (2, 1));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn out_of_range_classes_are_internal_errors_not_clamped() {
        let handle =
            start("127.0.0.1:0", Arc::new(OverflowStub), ServeConfig::new()).expect("bind failed");
        let mut client = Client::connect(handle.addr()).unwrap();
        match client.predict(1, &[1.0]).unwrap() {
            Response::Error {
                id, code, message, ..
            } => {
                assert_eq!((id, code), (1, ErrorCode::Internal));
                assert!(message.contains("u32"), "unexpected message {message:?}");
            }
            other => panic!("expected an Internal error, got {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn remote_shutdown_frame_stops_the_server() {
        let handle = start_stub(ServeConfig::new());
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.shutdown_server(9).unwrap(), Response::Pong { id: 9 });
        handle.join();
        // The listener is gone: new connections are refused (allow a
        // moment for the OS to tear the socket down).
        std::thread::sleep(Duration::from_millis(20));
        assert!(Client::connect(addr).is_err());
    }

    /// A small trained LookHD model for the online-path tests.
    fn trained_classifier() -> LookHdClassifier {
        use hdc::FitClassifier;
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![if i % 2 == 0 { 0.2 } else { 0.8 }; 6])
            .collect();
        let ys: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let config = lookhd::LookHdConfig::new()
            .with_dim(256)
            .with_retrain_epochs(0)
            .with_validation_fraction(0.0);
        LookHdClassifier::fit(&config, &xs, &ys).expect("fit failed")
    }

    #[test]
    fn online_feedback_refresh_and_stamped_predicts() {
        let handle = start_online(
            "127.0.0.1:0",
            trained_classifier(),
            ServeConfig::new(),
            OnlineConfig::new(),
        )
        .expect("bind failed");
        let mut client = Client::connect(handle.addr()).unwrap();

        // Version 1 serves until the first swap.
        assert_eq!(
            client.predict_stamped(1, &[0.8; 6]).unwrap(),
            Response::PredictStamped {
                id: 1,
                trace_id: 0,
                class: 1,
                version: 1
            }
        );

        // Feedback folds ack with the live version and a running count.
        for (i, label) in [0u32, 1, 0].into_iter().enumerate() {
            let v = if label == 0 { 0.2 } else { 0.8 };
            assert_eq!(
                client.feedback(10 + i as u64, label, &[v; 6]).unwrap(),
                Response::FeedbackAck {
                    id: 10 + i as u64,
                    trace_id: 0,
                    version: 1,
                    observed: i as u64 + 1
                }
            );
        }

        // A manual refresh materializes version 2 ...
        assert_eq!(
            client.refresh(20).unwrap(),
            Response::RefreshAck {
                id: 20,
                trace_id: 0,
                version: 2
            }
        );
        assert_eq!(handle.model_version(), 2);

        // ... and new stamped predicts answer on it.
        match client.predict_stamped(21, &[0.2; 6]).unwrap() {
            Response::PredictStamped { id, version, .. } => {
                assert_eq!((id, version), (21, 2));
            }
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn feedback_without_online_training_is_rejected_politely() {
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        match client.feedback(1, 0, &[1.0]).unwrap() {
            Response::Error {
                id, code, message, ..
            } => {
                assert_eq!((id, code), (1, ErrorCode::BadRequest));
                assert!(message.contains("online"), "unexpected message {message:?}");
            }
            other => panic!("expected an error, got {other:?}"),
        }
        // The connection survives and keeps serving predictions.
        assert_eq!(
            client.predict(2, &[1.0]).unwrap(),
            Response::Predict {
                id: 2,
                trace_id: 0,
                class: 1
            }
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn out_of_range_feedback_labels_are_bad_requests() {
        let handle = start_online(
            "127.0.0.1:0",
            trained_classifier(),
            ServeConfig::new(),
            OnlineConfig::new(),
        )
        .expect("bind failed");
        let mut client = Client::connect(handle.addr()).unwrap();
        match client.feedback(1, 99, &[0.5; 6]).unwrap() {
            Response::Error { id, code, .. } => {
                assert_eq!((id, code), (1, ErrorCode::BadRequest));
            }
            other => panic!("expected an error, got {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn config_builder_clamps_and_chains() {
        let c = ServeConfig::new()
            .with_workers(4)
            .with_max_batch(0)
            .with_queue_cap(0)
            .with_timeout(Duration::from_millis(5))
            .with_reactors(0)
            .with_max_conns(0);
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.queue_cap, 1);
        assert_eq!(c.timeout, Duration::from_millis(5));
        assert_eq!(c.reactors, 1);
        assert_eq!(c.max_conns, 1);
        assert!(ServeConfig::new().with_workers(0).effective_workers() >= 1);
    }
}
