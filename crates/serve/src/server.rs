//! The readiness-driven, micro-batching TCP inference server.
//!
//! ## Architecture
//!
//! ```text
//!  reactor threads (epoll/poll readiness loop, one Poller each)
//!    reactor 0 also owns the listener + tiered admission control
//!        │  nonblocking reads → FrameDecoder reassembly
//!        │  pings answered inline; predicts enqueued
//!        ▼
//!  bounded request queue (Mutex<VecDeque> + Condvar)
//!        │  full → immediate Overloaded rejection
//!        ▼
//!  N batch workers: pop ≤ max_batch requests per wakeup, drop
//!  deadline-expired ones with DeadlineExceeded, run
//!  Classifier::predict_batch on the rest, write responses inline on
//!  each connection (nonblocking); bytes the kernel refuses go to the
//!  connection's outbox and its reactor flushes them on EPOLLOUT
//! ```
//!
//! A connection costs one epoll registration plus its reassembly
//! buffer — no thread — so the server holds tens of thousands of
//! concurrent connections (bounded by [`ServeConfig::max_conns`]),
//! where the previous thread-per-connection reader design stalled at a
//! few hundred. See DESIGN.md §13 for the reactor architecture, the
//! four admission-control tiers, and the drain protocol.
//!
//! Batching is opportunistic: a worker takes whatever has accumulated in
//! the queue (up to [`ServeConfig::max_batch`]) in one lock acquisition,
//! so under light load requests run solo with no added latency, and under
//! concurrent load batches form naturally while workers are busy.
//!
//! ## Correctness contract
//!
//! Responses are **bit-identical** to direct single-threaded
//! [`Classifier::predict`] calls on the same model, regardless of worker
//! count, reactor count, batch size, or request interleaving: the
//! classifier trait guarantees `predict_batch` equals a serial `predict`
//! map, and the server never reorders a request's features or mutates
//! the model (`tests/serve_differential.rs` pins this across the wire).
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a [`Request::Shutdown`] frame) sets
//! the shutdown flag and wakes every reactor and worker — purely
//! event-driven, so it works on any bind address (`0.0.0.0` included).
//! Reactors close the listener and park all reads; workers drain the
//! queue and exit; [`ServerHandle::join`] then flags the drain and the
//! reactors flush remaining outboxes (bounded by a grace period) and
//! exit.
//!
//! ## Tracing and telemetry
//!
//! When metrics are enabled the server records stage histograms
//! (`serve/decode`, `serve/queue_wait`, `serve/batch`, `serve/encode`,
//! `serve/request`) and, when the trace ring is also enabled
//! (`obs::trace::set_enabled`), emits begin/end trace events for every
//! request that carried a non-zero client trace id — one
//! `decode → queue_wait → batch_assembly → predict → encode` chain per
//! request, keyed by that id, exportable as Chrome trace-event JSON.
//! Model-quality drift signals ride the same switch: a top1−top2 score
//! margin histogram (`serve/margin`, micro-units), per-class prediction
//! counters (`serve.predicted.<class>`), and the kernel fallback
//! counters ticked inside the model's score path. All of it is
//! observation only — the batched predict path and its bit-identity
//! contract are untouched.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netpoll::Poller;
use obs::trace::{self, Phase};

use crate::conn::Conn;
use crate::model::SharedClassifier;
use crate::reactor::{Reactor, ReactorQueue};
use crate::wire::{ErrorCode, Response};

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Batch worker thread count (`0` = the host's available
    /// parallelism). Each worker runs whole batches, so this is the
    /// server's inference parallelism.
    pub workers: usize,
    /// Most requests a worker coalesces into one
    /// [`hdc::Classifier::predict_batch`] call.
    pub max_batch: usize,
    /// Bound on the request queue; a full queue rejects new requests
    /// with [`ErrorCode::Overloaded`] instead of growing without limit.
    pub queue_cap: usize,
    /// Per-request deadline, measured from enqueue to worker pickup. A
    /// request that waits longer is dropped with
    /// [`ErrorCode::DeadlineExceeded`] without running inference.
    pub timeout: Duration,
    /// Reactor (I/O event loop) thread count. One reactor drives
    /// thousands of connections; more split the descriptor set
    /// round-robin.
    pub reactors: usize,
    /// Most connections held open at once; the accept path answers the
    /// excess with one [`ErrorCode::Overloaded`] frame and closes
    /// (admission tier 1).
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 16,
            queue_cap: 1024,
            timeout: Duration::from_secs(1),
            reactors: 1,
            max_conns: 8192,
        }
    }
}

impl ServeConfig {
    /// The default configuration (1 worker, batches of ≤ 16, queue of
    /// 1024, 1 s deadline, 1 reactor, 8192 connections).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum batch size (clamped up to 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the queue bound (clamped up to 1).
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap.max(1);
        self
    }

    /// Sets the per-request deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the reactor thread count (clamped up to 1).
    pub fn with_reactors(mut self, reactors: usize) -> Self {
        self.reactors = reactors.max(1);
        self
    }

    /// Sets the connection cap (clamped up to 1).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// The worker count a server will actually spawn.
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// One queued predict request.
pub(crate) struct Pending {
    id: u64,
    /// Client-supplied trace id (`0` = untraced): echoed in the response
    /// and stamped on every trace event this request emits.
    trace_id: u64,
    features: Vec<f64>,
    enqueued: Instant,
    /// Trace-clock timestamp of the enqueue (`0` when tracing is off);
    /// the begin edge of the `queue_wait` span.
    enqueued_ns: u64,
    conn: Arc<Conn>,
}

impl Pending {
    /// Emits one begin/end trace pair stamped with this request's trace
    /// id, when both the ring and the id are live.
    fn trace_pair(&self, name: &'static str, begin_ns: u64, end_ns: u64) {
        if self.trace_id != 0 && trace::enabled() {
            trace::emit_at(name, self.trace_id, Phase::Begin, begin_ns);
            trace::emit_at(name, self.trace_id, Phase::End, end_ns);
        }
    }

    /// Sends the one response every queued request is owed, retiring
    /// its in-flight slot on the connection.
    fn respond(&self, response: &Response) {
        self.conn.send(response);
        self.conn.finish_request();
    }
}

/// State shared by the reactors and workers.
pub(crate) struct Inner {
    pub(crate) model: SharedClassifier,
    pub(crate) config: ServeConfig,
    pub(crate) local_addr: SocketAddr,
    pub(crate) queue: Mutex<VecDeque<Pending>>,
    pub(crate) work_ready: Condvar,
    pub(crate) shutdown: AtomicBool,
    /// Set by [`ServerHandle::join`] once the workers have exited: the
    /// reactors flush what remains and stop.
    pub(crate) drained: AtomicBool,
    /// Live connections across all reactors (admission tier 1).
    pub(crate) conn_count: AtomicUsize,
    /// Monotonic connection-token source (tokens never recycle, so a
    /// stale command can never act on the wrong connection).
    pub(crate) next_token: AtomicU64,
    /// Every reactor's command queue + waker, for shutdown broadcast.
    pub(crate) reactor_queues: Vec<Arc<ReactorQueue>>,
}

impl Inner {
    /// Idempotent, event-driven shutdown trigger: sets the flag and
    /// wakes every reactor (they close the listener and park reads) and
    /// every worker (they drain the queue and exit). No self-connect —
    /// this works on any bind address, `0.0.0.0` included.
    pub(crate) fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for queue in &self.reactor_queues {
            queue.wake();
        }
        self.work_ready.notify_all();
    }

    /// Enqueues one predict request, or answers immediately with a
    /// backpressure/shutdown rejection. The shutdown check happens under
    /// the queue lock so no request can slip in after the workers'
    /// drain-and-exit decision.
    pub(crate) fn enqueue(&self, conn: &Arc<Conn>, id: u64, trace_id: u64, features: Vec<f64>) {
        let depth = {
            let mut queue = self.queue.lock().expect("queue lock poisoned");
            if self.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                conn.send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                });
                obs::counter("serve.responses.error", 1);
                return;
            }
            if queue.len() >= self.config.queue_cap {
                drop(queue);
                obs::counter("serve.overload_rejections", 1);
                obs::counter("serve.responses.error", 1);
                conn.send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::Overloaded,
                    message: format!("request queue full ({} pending)", self.config.queue_cap),
                });
                return;
            }
            conn.begin_request();
            queue.push_back(Pending {
                id,
                trace_id,
                features,
                enqueued: Instant::now(),
                enqueued_ns: if trace_id != 0 && trace::enabled() {
                    trace::now_ns()
                } else {
                    0
                },
                conn: Arc::clone(conn),
            });
            queue.len()
        };
        obs::counter("serve.requests", 1);
        if obs::enabled() {
            // Dimensionless histogram: depth n recorded as n ns (see
            // DESIGN.md §9).
            obs::record("serve/queue_depth", Duration::from_nanos(depth as u64));
        }
        self.work_ready.notify_one();
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] and [`ServerHandle::join`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Triggers a graceful shutdown: no new connections or requests are
    /// accepted, queued requests are still answered. Idempotent; does
    /// not block — call [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }

    /// Whether a shutdown has been triggered (locally or by a
    /// [`Request::Shutdown`] frame).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has shut down (via [`ServerHandle::shutdown`]
    /// or a remote shutdown frame) and every thread has exited: the
    /// workers first (they drain the queue), then the reactors (they
    /// flush every connection's remaining response bytes, bounded by a
    /// grace period, and close).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The workers have answered everything that will ever be
        // answered; tell the reactors to flush and exit.
        self.inner.drained.store(true, Ordering::SeqCst);
        for queue in &self.inner.reactor_queues {
            queue.wake();
        }
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
    }
}

/// Binds `addr` and starts serving `model`. Returns once the listener is
/// live; use the handle to discover the bound port (`addr` may be
/// `127.0.0.1:0`), trigger shutdown, and join.
///
/// # Errors
///
/// Returns bind and event-loop setup errors; everything after startup
/// is reported per-connection over the wire.
pub fn start<A: ToSocketAddrs>(
    addr: A,
    model: SharedClassifier,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    // Surface which scoring kernel actually serves (automatic selection
    // may have silently fallen back) in the admin counter snapshot.
    if let Some(name) = model.kernel_name() {
        obs::counter(&format!("kernel.active.{name}"), 1);
    }

    let n_reactors = config.reactors.max(1);
    let mut pollers = Vec::with_capacity(n_reactors);
    let mut queues = Vec::with_capacity(n_reactors);
    for _ in 0..n_reactors {
        let poller = Poller::new()?;
        queues.push(Arc::new(ReactorQueue::new(poller.waker())));
        pollers.push(poller);
    }

    let inner = Arc::new(Inner {
        model,
        config,
        local_addr,
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        drained: AtomicBool::new(false),
        conn_count: AtomicUsize::new(0),
        next_token: AtomicU64::new(0),
        reactor_queues: queues.clone(),
    });

    let workers = (0..config.effective_workers())
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();

    let mut listener = Some(listener);
    let reactors = pollers
        .into_iter()
        .enumerate()
        .map(|(i, poller)| {
            let reactor = Reactor::new(
                Arc::clone(&inner),
                poller,
                Arc::clone(&queues[i]),
                listener.take(), // reactor 0 owns the listener
                queues.clone(),
            );
            std::thread::spawn(move || reactor.run())
        })
        .collect();

    Ok(ServerHandle {
        inner,
        reactors,
        workers,
    })
}

/// Pops batches off the queue until shutdown *and* the queue is drained.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = inner.queue.lock().expect("queue lock poisoned");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.work_ready.wait(queue).expect("queue lock poisoned");
            }
            let take = queue.len().min(inner.config.max_batch);
            queue.drain(..take).collect()
        };
        process_batch(inner, batch);
    }
}

fn process_batch(inner: &Arc<Inner>, batch: Vec<Pending>) {
    // Expire requests that waited past their deadline before spending any
    // inference time on them; expiry frees their queue slots for free.
    let now = Instant::now();
    let pop_ns = if obs::enabled() { trace::now_ns() } else { 0 };
    let mut live = Vec::with_capacity(batch.len());
    for pending in batch {
        if obs::enabled() {
            obs::record("serve/queue_wait", now.duration_since(pending.enqueued));
            if pending.enqueued_ns != 0 {
                pending.trace_pair("queue_wait", pending.enqueued_ns, pop_ns);
            }
        }
        if now.duration_since(pending.enqueued) > inner.config.timeout {
            obs::counter("serve.deadline_misses", 1);
            obs::counter("serve.responses.error", 1);
            pending.respond(&Response::Error {
                id: pending.id,
                trace_id: pending.trace_id,
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "request waited past the {} ms deadline",
                    inner.config.timeout.as_millis()
                ),
            });
            continue;
        }
        live.push(pending);
    }
    if live.is_empty() {
        return;
    }

    obs::counter("serve.batches", 1);
    if obs::enabled() {
        // Dimensionless histogram: batch of n recorded as n ns.
        obs::record("serve/batch_size", Duration::from_nanos(live.len() as u64));
    }

    let features: Vec<Vec<f64>> = live
        .iter_mut()
        .map(|p| std::mem::take(&mut p.features))
        .collect();
    let started = Instant::now();
    let predict_begin_ns = if obs::enabled() { trace::now_ns() } else { 0 };
    if obs::enabled() {
        // Batch assembly = everything between queue pop and the predict
        // call: expiry checks and feature gathering.
        for pending in &live {
            pending.trace_pair("batch_assembly", pop_ns, predict_begin_ns);
        }
    }
    match inner.model.predict_batch(&features) {
        Ok(predictions) => {
            if obs::enabled() {
                obs::record("serve/batch", started.elapsed());
                let predict_end_ns = trace::now_ns();
                for pending in &live {
                    pending.trace_pair("predict", predict_begin_ns, predict_end_ns);
                }
                record_quality_signals(inner, &features, &predictions);
            }
            for (pending, class) in live.iter().zip(predictions) {
                respond_ok(pending, class);
            }
        }
        // The batch call propagates its *first* error, which would
        // poison every request sharing the batch; fall back to
        // per-request predictions so one bad feature vector only fails
        // its own request.
        Err(_) => {
            for (pending, feats) in live.iter().zip(&features) {
                match inner.model.predict(feats) {
                    Ok(class) => respond_ok(pending, class),
                    Err(e) => {
                        obs::counter("serve.responses.error", 1);
                        pending.respond(&Response::Error {
                            id: pending.id,
                            trace_id: pending.trace_id,
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// Scale for the `serve/margin` histogram: a top1−top2 score margin of
/// `m` is recorded as `m × 1e6` dimensionless "nanoseconds", giving six
/// decimal digits of margin resolution inside integer buckets.
pub const MARGIN_SCALE: f64 = 1e6;

/// Records the model-quality drift signals for one successfully
/// predicted batch: per-class prediction counters and the top1−top2
/// score margin histogram. Runs only when metrics are enabled — the
/// margin needs a second [`hdc::Classifier::class_scores`] pass, which
/// must cost nothing when observability is off.
fn record_quality_signals(inner: &Arc<Inner>, features: &[Vec<f64>], predictions: &[usize]) {
    for class in predictions {
        obs::counter(&format!("serve.predicted.{class}"), 1);
    }
    for feats in features {
        match inner.model.class_scores(feats) {
            Ok(Some(scores)) if scores.len() >= 2 => {
                let mut top1 = f64::NEG_INFINITY;
                let mut top2 = f64::NEG_INFINITY;
                for &s in &scores {
                    if s > top1 {
                        top2 = top1;
                        top1 = s;
                    } else if s > top2 {
                        top2 = s;
                    }
                }
                let margin = (top1 - top2).max(0.0);
                if margin.is_finite() {
                    obs::record(
                        "serve/margin",
                        Duration::from_nanos((margin * MARGIN_SCALE) as u64),
                    );
                }
            }
            // Score-less models (or a scoring error) simply contribute no
            // margin samples; the counter keeps the gap visible.
            _ => obs::counter("serve.margin_unavailable", 1),
        }
    }
}

fn respond_ok(pending: &Pending, class: usize) {
    // A class label the wire cannot carry is a server-side fault, not a
    // plausible-looking answer: report it as Internal instead of
    // clamping to u32::MAX.
    let Ok(class) = u32::try_from(class) else {
        obs::counter("serve.class_overflows", 1);
        obs::counter("serve.responses.error", 1);
        pending.respond(&Response::Error {
            id: pending.id,
            trace_id: pending.trace_id,
            code: ErrorCode::Internal,
            message: format!("predicted class {class} exceeds the wire's u32 range"),
        });
        return;
    };
    obs::counter("serve.responses.ok", 1);
    if obs::enabled() {
        obs::record("serve/request", pending.enqueued.elapsed());
    }
    let response = Response::Predict {
        id: pending.id,
        trace_id: pending.trace_id,
        class,
    };
    if obs::enabled() {
        let encode_begin_ns = trace::now_ns();
        let started = Instant::now();
        pending.respond(&response);
        obs::record("serve/encode", started.elapsed());
        pending.trace_pair("encode", encode_begin_ns, trace::now_ns());
    } else {
        pending.respond(&response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::wire::Request;
    use hdc::{HdcError, Result};

    /// Classifies by sign of the first feature; errors on empty input.
    struct SignStub;

    impl hdc::Classifier for SignStub {
        fn num_classes(&self) -> usize {
            2
        }

        fn predict(&self, features: &[f64]) -> Result<usize> {
            match features.first() {
                Some(&v) => Ok(usize::from(v >= 0.0)),
                None => Err(HdcError::invalid_dataset("empty feature vector")),
            }
        }
    }

    /// Always predicts a class that cannot fit in the wire's u32 field.
    struct OverflowStub;

    impl hdc::Classifier for OverflowStub {
        fn num_classes(&self) -> usize {
            usize::MAX
        }

        fn predict(&self, _features: &[f64]) -> Result<usize> {
            Ok(u32::MAX as usize + 1)
        }
    }

    fn start_stub(config: ServeConfig) -> ServerHandle {
        start("127.0.0.1:0", Arc::new(SignStub), config).expect("bind failed")
    }

    #[test]
    fn serves_predictions_and_pings() {
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict(1, &[2.5]).unwrap(),
            Response::Predict {
                id: 1,
                trace_id: 0,
                class: 1
            }
        );
        assert_eq!(
            client.predict(2, &[-2.5]).unwrap(),
            Response::Predict {
                id: 2,
                trace_id: 0,
                class: 0
            }
        );
        assert_eq!(client.ping(3).unwrap(), Response::Pong { id: 3 });
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn serves_across_multiple_reactors() {
        let handle = start_stub(ServeConfig::new().with_reactors(3).with_workers(2));
        let mut clients: Vec<Client> = (0..8)
            .map(|_| Client::connect(handle.addr()).unwrap())
            .collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let id = i as u64 + 1;
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(
                client.predict(id, &[sign]).unwrap(),
                Response::Predict {
                    id,
                    trace_id: 0,
                    class: u32::from(i % 2 == 0),
                }
            );
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn traced_requests_echo_the_trace_id() {
        // Tracing on the server side is *not* enabled here: the echo is a
        // pure wire-level contract and must hold regardless.
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict_traced(1, 0xfeed, &[2.5]).unwrap(),
            Response::Predict {
                id: 1,
                trace_id: 0xfeed,
                class: 1
            }
        );
        // Bad requests echo it too.
        match client.predict_traced(2, 0xbeef, &[]).unwrap() {
            Response::Error {
                id, trace_id, code, ..
            } => {
                assert_eq!((id, trace_id, code), (2, 0xbeef, ErrorCode::BadRequest));
            }
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_feature_vectors_fail_alone_in_a_batch() {
        let handle = start_stub(ServeConfig::new().with_max_batch(8));
        let mut client = Client::connect(handle.addr()).unwrap();
        // Pipeline a good, an empty (model-rejected), and another good
        // request so they can share a batch.
        client
            .send(&Request::Predict {
                id: 1,
                trace_id: 0,
                features: vec![1.0],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 2,
                trace_id: 0,
                features: vec![],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 3,
                trace_id: 0,
                features: vec![-1.0],
            })
            .unwrap();
        let mut ok = 0;
        let mut errors = 0;
        for _ in 0..3 {
            match client.recv().unwrap() {
                Response::Predict { id, class, .. } => {
                    ok += 1;
                    assert_eq!(class, usize::from(id == 1) as u32);
                }
                Response::Error { id, code, .. } => {
                    errors += 1;
                    assert_eq!(id, 2);
                    assert_eq!(code, ErrorCode::BadRequest);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!((ok, errors), (2, 1));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn out_of_range_classes_are_internal_errors_not_clamped() {
        let handle =
            start("127.0.0.1:0", Arc::new(OverflowStub), ServeConfig::new()).expect("bind failed");
        let mut client = Client::connect(handle.addr()).unwrap();
        match client.predict(1, &[1.0]).unwrap() {
            Response::Error {
                id, code, message, ..
            } => {
                assert_eq!((id, code), (1, ErrorCode::Internal));
                assert!(message.contains("u32"), "unexpected message {message:?}");
            }
            other => panic!("expected an Internal error, got {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn remote_shutdown_frame_stops_the_server() {
        let handle = start_stub(ServeConfig::new());
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.shutdown_server(9).unwrap(), Response::Pong { id: 9 });
        handle.join();
        // The listener is gone: new connections are refused (allow a
        // moment for the OS to tear the socket down).
        std::thread::sleep(Duration::from_millis(20));
        assert!(Client::connect(addr).is_err());
    }

    #[test]
    fn config_builder_clamps_and_chains() {
        let c = ServeConfig::new()
            .with_workers(4)
            .with_max_batch(0)
            .with_queue_cap(0)
            .with_timeout(Duration::from_millis(5))
            .with_reactors(0)
            .with_max_conns(0);
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.queue_cap, 1);
        assert_eq!(c.timeout, Duration::from_millis(5));
        assert_eq!(c.reactors, 1);
        assert_eq!(c.max_conns, 1);
        assert!(ServeConfig::new().with_workers(0).effective_workers() >= 1);
    }
}
