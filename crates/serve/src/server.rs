//! The threaded, micro-batching TCP inference server.
//!
//! ## Architecture
//!
//! ```text
//!  accept thread ──▶ one reader thread per connection
//!                         │  decode frame, answer pings inline
//!                         ▼
//!                 bounded request queue (Mutex<VecDeque> + Condvar)
//!                         │  full → immediate Overloaded rejection
//!                         ▼
//!            N batch workers: pop ≤ max_batch requests per wakeup,
//!            drop deadline-expired ones with DeadlineExceeded, run
//!            Classifier::predict_batch on the rest, write responses
//!            back through each connection's shared write half
//! ```
//!
//! Batching is opportunistic: a worker takes whatever has accumulated in
//! the queue (up to [`ServeConfig::max_batch`]) in one lock acquisition,
//! so under light load requests run solo with no added latency, and under
//! concurrent load batches form naturally while workers are busy.
//!
//! ## Correctness contract
//!
//! Responses are **bit-identical** to direct single-threaded
//! [`Classifier::predict`] calls on the same model, regardless of worker
//! count, batch size, or request interleaving: the classifier trait
//! guarantees `predict_batch` equals a serial `predict` map, and the
//! server never reorders a request's features or mutates the model
//! (`tests/serve_differential.rs` pins this across the wire).
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a [`Request::Shutdown`] frame) stops
//! the accept loop, half-closes every connection's read side so readers
//! drain out, lets workers finish everything already queued, and then
//! joins all threads ([`ServerHandle::join`]).
//!
//! ## Tracing and telemetry
//!
//! When metrics are enabled the server records stage histograms
//! (`serve/decode`, `serve/queue_wait`, `serve/batch`, `serve/encode`,
//! `serve/request`) and, when the trace ring is also enabled
//! (`obs::trace::set_enabled`), emits begin/end trace events for every
//! request that carried a non-zero client trace id — one
//! `decode → queue_wait → batch_assembly → predict → encode` chain per
//! request, keyed by that id, exportable as Chrome trace-event JSON.
//! Model-quality drift signals ride the same switch: a top1−top2 score
//! margin histogram (`serve/margin`, micro-units), per-class prediction
//! counters (`serve.predicted.<class>`), and the score-LUT fallback
//! counters ticked inside the model's score path. All of it is
//! observation only — the batched predict path and its bit-identity
//! contract are untouched.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::trace::{self, Phase};

use crate::model::SharedClassifier;
use crate::wire::{self, ErrorCode, Request, Response, WireError};

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Batch worker thread count (`0` = the host's available
    /// parallelism). Each worker runs whole batches, so this is the
    /// server's inference parallelism.
    pub workers: usize,
    /// Most requests a worker coalesces into one
    /// [`hdc::Classifier::predict_batch`] call.
    pub max_batch: usize,
    /// Bound on the request queue; a full queue rejects new requests
    /// with [`ErrorCode::Overloaded`] instead of growing without limit.
    pub queue_cap: usize,
    /// Per-request deadline, measured from enqueue to worker pickup. A
    /// request that waits longer is dropped with
    /// [`ErrorCode::DeadlineExceeded`] without running inference.
    pub timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 16,
            queue_cap: 1024,
            timeout: Duration::from_secs(1),
        }
    }
}

impl ServeConfig {
    /// The default configuration (1 worker, batches of ≤ 16, queue of
    /// 1024, 1 s deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum batch size (clamped up to 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the queue bound (clamped up to 1).
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap.max(1);
        self
    }

    /// Sets the per-request deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The worker count a server will actually spawn.
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// The write half of one client connection, shared between its reader
/// thread and every batch worker.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response frame; transport errors are swallowed (a
    /// vanished client is not the server's problem).
    fn send(&self, response: &Response) {
        if let Ok(mut stream) = self.stream.lock() {
            let _ = wire::write_response(&mut *stream, response);
        }
    }

    fn shutdown_read(&self) {
        if let Ok(stream) = self.stream.lock() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// One queued predict request.
struct Pending {
    id: u64,
    /// Client-supplied trace id (`0` = untraced): echoed in the response
    /// and stamped on every trace event this request emits.
    trace_id: u64,
    features: Vec<f64>,
    enqueued: Instant,
    /// Trace-clock timestamp of the enqueue (`0` when tracing is off);
    /// the begin edge of the `queue_wait` span.
    enqueued_ns: u64,
    conn: Arc<ConnWriter>,
}

impl Pending {
    /// Emits one begin/end trace pair stamped with this request's trace
    /// id, when both the ring and the id are live.
    fn trace_pair(&self, name: &'static str, begin_ns: u64, end_ns: u64) {
        if self.trace_id != 0 && trace::enabled() {
            trace::emit_at(name, self.trace_id, Phase::Begin, begin_ns);
            trace::emit_at(name, self.trace_id, Phase::End, end_ns);
        }
    }
}

/// State shared by the accept loop, readers, and workers.
struct Inner {
    model: SharedClassifier,
    config: ServeConfig,
    local_addr: SocketAddr,
    queue: Mutex<VecDeque<Pending>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    conns: Mutex<Vec<Arc<ConnWriter>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    /// Idempotent shutdown trigger: stops the accept loop, half-closes
    /// every connection's read side, and wakes all workers so they can
    /// drain the queue and exit.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop (it re-checks the flag per connection).
        let _ = TcpStream::connect(self.local_addr);
        let conns = self.conns.lock().expect("conns lock poisoned");
        for conn in conns.iter() {
            conn.shutdown_read();
        }
        drop(conns);
        self.work_ready.notify_all();
    }

    /// Enqueues one predict request, or answers immediately with a
    /// backpressure/shutdown rejection. The shutdown check happens under
    /// the queue lock so no request can slip in after the workers'
    /// drain-and-exit decision.
    fn enqueue(&self, conn: &Arc<ConnWriter>, id: u64, trace_id: u64, features: Vec<f64>) {
        let depth = {
            let mut queue = self.queue.lock().expect("queue lock poisoned");
            if self.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                conn.send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                });
                obs::counter("serve.responses.error", 1);
                return;
            }
            if queue.len() >= self.config.queue_cap {
                drop(queue);
                obs::counter("serve.overload_rejections", 1);
                obs::counter("serve.responses.error", 1);
                conn.send(&Response::Error {
                    id,
                    trace_id,
                    code: ErrorCode::Overloaded,
                    message: format!("request queue full ({} pending)", self.config.queue_cap),
                });
                return;
            }
            queue.push_back(Pending {
                id,
                trace_id,
                features,
                enqueued: Instant::now(),
                enqueued_ns: if trace_id != 0 && trace::enabled() {
                    trace::now_ns()
                } else {
                    0
                },
                conn: Arc::clone(conn),
            });
            queue.len()
        };
        obs::counter("serve.requests", 1);
        if obs::enabled() {
            // Dimensionless histogram: depth n recorded as n ns (see
            // DESIGN.md §9).
            obs::record("serve/queue_depth", Duration::from_nanos(depth as u64));
        }
        self.work_ready.notify_one();
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] and [`ServerHandle::join`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Triggers a graceful shutdown: no new connections or requests are
    /// accepted, queued requests are still answered. Idempotent; does
    /// not block — call [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }

    /// Whether a shutdown has been triggered (locally or by a
    /// [`Request::Shutdown`] frame).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has shut down (via [`ServerHandle::shutdown`]
    /// or a remote shutdown frame) and every thread has exited: the
    /// accept loop first, then all connection readers, then the batch
    /// workers after they drain the queue.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has exited, so no new readers can appear.
        let readers = std::mem::take(&mut *self.inner.readers.lock().expect("readers lock"));
        for reader in readers {
            let _ = reader.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `addr` and starts serving `model`. Returns once the listener is
/// live; use the handle to discover the bound port (`addr` may be
/// `127.0.0.1:0`), trigger shutdown, and join.
///
/// # Errors
///
/// Returns the bind error; everything after the bind is reported
/// per-connection over the wire.
pub fn start<A: ToSocketAddrs>(
    addr: A,
    model: SharedClassifier,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    // Surface which scoring kernel actually serves (automatic selection
    // may have silently fallen back) in the admin counter snapshot.
    if let Some(name) = model.kernel_name() {
        obs::counter(&format!("kernel.active.{name}"), 1);
    }
    let inner = Arc::new(Inner {
        model,
        config,
        local_addr,
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        readers: Mutex::new(Vec::new()),
    });

    let workers = (0..config.effective_workers())
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();

    let accept = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&listener, &inner))
    };

    Ok(ServerHandle {
        inner,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small frames written one at a time; without
        // nodelay, Nagle holds each behind the previous frame's ACK.
        let _ = stream.set_nodelay(true);
        obs::counter("serve.connections", 1);
        let conn = match stream.try_clone() {
            Ok(write_half) => Arc::new(ConnWriter {
                stream: Mutex::new(write_half),
            }),
            Err(_) => continue,
        };
        inner
            .conns
            .lock()
            .expect("conns lock poisoned")
            .push(Arc::clone(&conn));
        let reader = {
            let inner = Arc::clone(inner);
            std::thread::spawn(move || {
                reader_loop(&inner, stream, &conn);
                // Forget the write half so a long-lived server does not
                // accumulate dead connections.
                let mut conns = inner.conns.lock().expect("conns lock poisoned");
                conns.retain(|c| !Arc::ptr_eq(c, &conn));
            })
        };
        inner
            .readers
            .lock()
            .expect("readers lock poisoned")
            .push(reader);
    }
}

/// Reads frames off one connection until EOF, transport error, or an
/// unrecoverable framing error.
///
/// Framing and decoding are separate steps so the `serve/decode` span
/// measures parsing work only, never the idle socket wait for the next
/// frame. The error classification is unchanged from the fused
/// [`wire::read_request`] path: transport errors and frame-alignment
/// damage (over-cap length prefix, mid-frame EOF, or a body shorter than
/// its own fields) drop the connection; any other malformed body keeps
/// it.
fn reader_loop(inner: &Arc<Inner>, mut stream: TcpStream, conn: &Arc<ConnWriter>) {
    loop {
        let body = match wire::read_frame(&mut stream) {
            Ok(body) => body,
            Err(WireError::Io(_)) => break,
            Err(e) => {
                // read_frame only fails with Io, TooLarge, or Truncated;
                // the latter two mean the stream is no longer
                // frame-aligned.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    trace_id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
                break;
            }
        };
        let decode_begin_ns = if obs::enabled() { trace::now_ns() } else { 0 };
        match wire::decode_request(&body) {
            Err(e @ (WireError::TooLarge { .. } | WireError::Truncated { .. })) => {
                // A lying in-body count (the frame held fewer bytes than
                // its fields claim): treated as alignment damage, answer
                // and drop the connection.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    trace_id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
                break;
            }
            Err(e) => {
                // The frame arrived intact but its body was malformed;
                // framing is still aligned, so keep the connection.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    trace_id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
            }
            Ok(Request::Ping { id }) => conn.send(&Response::Pong { id }),
            Ok(Request::Shutdown { id }) => {
                conn.send(&Response::Pong { id });
                inner.trigger_shutdown();
                break;
            }
            Ok(Request::Predict {
                id,
                trace_id,
                features,
            }) => {
                if obs::enabled() {
                    let decode_end_ns = trace::now_ns();
                    obs::record(
                        "serve/decode",
                        Duration::from_nanos(decode_end_ns.saturating_sub(decode_begin_ns)),
                    );
                    if trace_id != 0 && trace::enabled() {
                        trace::emit_at("decode", trace_id, Phase::Begin, decode_begin_ns);
                        trace::emit_at("decode", trace_id, Phase::End, decode_end_ns);
                    }
                }
                inner.enqueue(conn, id, trace_id, features);
            }
        }
    }
}

/// Pops batches off the queue until shutdown *and* the queue is drained.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = inner.queue.lock().expect("queue lock poisoned");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.work_ready.wait(queue).expect("queue lock poisoned");
            }
            let take = queue.len().min(inner.config.max_batch);
            queue.drain(..take).collect()
        };
        process_batch(inner, batch);
    }
}

fn process_batch(inner: &Arc<Inner>, batch: Vec<Pending>) {
    // Expire requests that waited past their deadline before spending any
    // inference time on them; expiry frees their queue slots for free.
    let now = Instant::now();
    let pop_ns = if obs::enabled() { trace::now_ns() } else { 0 };
    let mut live = Vec::with_capacity(batch.len());
    for pending in batch {
        if obs::enabled() {
            obs::record("serve/queue_wait", now.duration_since(pending.enqueued));
            if pending.enqueued_ns != 0 {
                pending.trace_pair("queue_wait", pending.enqueued_ns, pop_ns);
            }
        }
        if now.duration_since(pending.enqueued) > inner.config.timeout {
            obs::counter("serve.deadline_misses", 1);
            obs::counter("serve.responses.error", 1);
            pending.conn.send(&Response::Error {
                id: pending.id,
                trace_id: pending.trace_id,
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "request waited past the {} ms deadline",
                    inner.config.timeout.as_millis()
                ),
            });
            continue;
        }
        live.push(pending);
    }
    if live.is_empty() {
        return;
    }

    obs::counter("serve.batches", 1);
    if obs::enabled() {
        // Dimensionless histogram: batch of n recorded as n ns.
        obs::record("serve/batch_size", Duration::from_nanos(live.len() as u64));
    }

    let features: Vec<Vec<f64>> = live
        .iter_mut()
        .map(|p| std::mem::take(&mut p.features))
        .collect();
    let started = Instant::now();
    let predict_begin_ns = if obs::enabled() { trace::now_ns() } else { 0 };
    if obs::enabled() {
        // Batch assembly = everything between queue pop and the predict
        // call: expiry checks and feature gathering.
        for pending in &live {
            pending.trace_pair("batch_assembly", pop_ns, predict_begin_ns);
        }
    }
    match inner.model.predict_batch(&features) {
        Ok(predictions) => {
            if obs::enabled() {
                obs::record("serve/batch", started.elapsed());
                let predict_end_ns = trace::now_ns();
                for pending in &live {
                    pending.trace_pair("predict", predict_begin_ns, predict_end_ns);
                }
                record_quality_signals(inner, &features, &predictions);
            }
            for (pending, class) in live.iter().zip(predictions) {
                respond_ok(pending, class);
            }
        }
        // The batch call propagates its *first* error, which would
        // poison every request sharing the batch; fall back to
        // per-request predictions so one bad feature vector only fails
        // its own request.
        Err(_) => {
            for (pending, feats) in live.iter().zip(&features) {
                match inner.model.predict(feats) {
                    Ok(class) => respond_ok(pending, class),
                    Err(e) => {
                        obs::counter("serve.responses.error", 1);
                        pending.conn.send(&Response::Error {
                            id: pending.id,
                            trace_id: pending.trace_id,
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// Scale for the `serve/margin` histogram: a top1−top2 score margin of
/// `m` is recorded as `m × 1e6` dimensionless "nanoseconds", giving six
/// decimal digits of margin resolution inside integer buckets.
pub const MARGIN_SCALE: f64 = 1e6;

/// Records the model-quality drift signals for one successfully
/// predicted batch: per-class prediction counters and the top1−top2
/// score margin histogram. Runs only when metrics are enabled — the
/// margin needs a second [`hdc::Classifier::class_scores`] pass, which
/// must cost nothing when observability is off.
fn record_quality_signals(inner: &Arc<Inner>, features: &[Vec<f64>], predictions: &[usize]) {
    for class in predictions {
        obs::counter(&format!("serve.predicted.{class}"), 1);
    }
    for feats in features {
        match inner.model.class_scores(feats) {
            Ok(Some(scores)) if scores.len() >= 2 => {
                let mut top1 = f64::NEG_INFINITY;
                let mut top2 = f64::NEG_INFINITY;
                for &s in &scores {
                    if s > top1 {
                        top2 = top1;
                        top1 = s;
                    } else if s > top2 {
                        top2 = s;
                    }
                }
                let margin = (top1 - top2).max(0.0);
                if margin.is_finite() {
                    obs::record(
                        "serve/margin",
                        Duration::from_nanos((margin * MARGIN_SCALE) as u64),
                    );
                }
            }
            // Score-less models (or a scoring error) simply contribute no
            // margin samples; the counter keeps the gap visible.
            _ => obs::counter("serve.margin_unavailable", 1),
        }
    }
}

fn respond_ok(pending: &Pending, class: usize) {
    obs::counter("serve.responses.ok", 1);
    if obs::enabled() {
        obs::record("serve/request", pending.enqueued.elapsed());
    }
    let response = Response::Predict {
        id: pending.id,
        trace_id: pending.trace_id,
        class: u32::try_from(class).unwrap_or(u32::MAX),
    };
    if obs::enabled() {
        let encode_begin_ns = trace::now_ns();
        let started = Instant::now();
        pending.conn.send(&response);
        obs::record("serve/encode", started.elapsed());
        pending.trace_pair("encode", encode_begin_ns, trace::now_ns());
    } else {
        pending.conn.send(&response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use hdc::{HdcError, Result};

    /// Classifies by sign of the first feature; errors on empty input.
    struct SignStub;

    impl hdc::Classifier for SignStub {
        fn num_classes(&self) -> usize {
            2
        }

        fn predict(&self, features: &[f64]) -> Result<usize> {
            match features.first() {
                Some(&v) => Ok(usize::from(v >= 0.0)),
                None => Err(HdcError::invalid_dataset("empty feature vector")),
            }
        }
    }

    fn start_stub(config: ServeConfig) -> ServerHandle {
        start("127.0.0.1:0", Arc::new(SignStub), config).expect("bind failed")
    }

    #[test]
    fn serves_predictions_and_pings() {
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict(1, &[2.5]).unwrap(),
            Response::Predict {
                id: 1,
                trace_id: 0,
                class: 1
            }
        );
        assert_eq!(
            client.predict(2, &[-2.5]).unwrap(),
            Response::Predict {
                id: 2,
                trace_id: 0,
                class: 0
            }
        );
        assert_eq!(client.ping(3).unwrap(), Response::Pong { id: 3 });
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn traced_requests_echo_the_trace_id() {
        // Tracing on the server side is *not* enabled here: the echo is a
        // pure wire-level contract and must hold regardless.
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict_traced(1, 0xfeed, &[2.5]).unwrap(),
            Response::Predict {
                id: 1,
                trace_id: 0xfeed,
                class: 1
            }
        );
        // Bad requests echo it too.
        match client.predict_traced(2, 0xbeef, &[]).unwrap() {
            Response::Error {
                id, trace_id, code, ..
            } => {
                assert_eq!((id, trace_id, code), (2, 0xbeef, ErrorCode::BadRequest));
            }
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_feature_vectors_fail_alone_in_a_batch() {
        let handle = start_stub(ServeConfig::new().with_max_batch(8));
        let mut client = Client::connect(handle.addr()).unwrap();
        // Pipeline a good, an empty (model-rejected), and another good
        // request so they can share a batch.
        client
            .send(&Request::Predict {
                id: 1,
                trace_id: 0,
                features: vec![1.0],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 2,
                trace_id: 0,
                features: vec![],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 3,
                trace_id: 0,
                features: vec![-1.0],
            })
            .unwrap();
        let mut ok = 0;
        let mut errors = 0;
        for _ in 0..3 {
            match client.recv().unwrap() {
                Response::Predict { id, class, .. } => {
                    ok += 1;
                    assert_eq!(class, usize::from(id == 1) as u32);
                }
                Response::Error { id, code, .. } => {
                    errors += 1;
                    assert_eq!(id, 2);
                    assert_eq!(code, ErrorCode::BadRequest);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!((ok, errors), (2, 1));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn remote_shutdown_frame_stops_the_server() {
        let handle = start_stub(ServeConfig::new());
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.shutdown_server(9).unwrap(), Response::Pong { id: 9 });
        handle.join();
        // The listener is gone: new connections are refused (allow a
        // moment for the OS to tear the socket down).
        std::thread::sleep(Duration::from_millis(20));
        assert!(Client::connect(addr).is_err());
    }

    #[test]
    fn config_builder_clamps_and_chains() {
        let c = ServeConfig::new()
            .with_workers(4)
            .with_max_batch(0)
            .with_queue_cap(0)
            .with_timeout(Duration::from_millis(5));
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.queue_cap, 1);
        assert_eq!(c.timeout, Duration::from_millis(5));
        assert!(ServeConfig::new().with_workers(0).effective_workers() >= 1);
    }
}
