//! The threaded, micro-batching TCP inference server.
//!
//! ## Architecture
//!
//! ```text
//!  accept thread ──▶ one reader thread per connection
//!                         │  decode frame, answer pings inline
//!                         ▼
//!                 bounded request queue (Mutex<VecDeque> + Condvar)
//!                         │  full → immediate Overloaded rejection
//!                         ▼
//!            N batch workers: pop ≤ max_batch requests per wakeup,
//!            drop deadline-expired ones with DeadlineExceeded, run
//!            Classifier::predict_batch on the rest, write responses
//!            back through each connection's shared write half
//! ```
//!
//! Batching is opportunistic: a worker takes whatever has accumulated in
//! the queue (up to [`ServeConfig::max_batch`]) in one lock acquisition,
//! so under light load requests run solo with no added latency, and under
//! concurrent load batches form naturally while workers are busy.
//!
//! ## Correctness contract
//!
//! Responses are **bit-identical** to direct single-threaded
//! [`Classifier::predict`] calls on the same model, regardless of worker
//! count, batch size, or request interleaving: the classifier trait
//! guarantees `predict_batch` equals a serial `predict` map, and the
//! server never reorders a request's features or mutates the model
//! (`tests/serve_differential.rs` pins this across the wire).
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a [`Request::Shutdown`] frame) stops
//! the accept loop, half-closes every connection's read side so readers
//! drain out, lets workers finish everything already queued, and then
//! joins all threads ([`ServerHandle::join`]).

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::model::SharedClassifier;
use crate::wire::{self, ErrorCode, Request, Response, WireError};

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Batch worker thread count (`0` = the host's available
    /// parallelism). Each worker runs whole batches, so this is the
    /// server's inference parallelism.
    pub workers: usize,
    /// Most requests a worker coalesces into one
    /// [`hdc::Classifier::predict_batch`] call.
    pub max_batch: usize,
    /// Bound on the request queue; a full queue rejects new requests
    /// with [`ErrorCode::Overloaded`] instead of growing without limit.
    pub queue_cap: usize,
    /// Per-request deadline, measured from enqueue to worker pickup. A
    /// request that waits longer is dropped with
    /// [`ErrorCode::DeadlineExceeded`] without running inference.
    pub timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 16,
            queue_cap: 1024,
            timeout: Duration::from_secs(1),
        }
    }
}

impl ServeConfig {
    /// The default configuration (1 worker, batches of ≤ 16, queue of
    /// 1024, 1 s deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum batch size (clamped up to 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the queue bound (clamped up to 1).
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap.max(1);
        self
    }

    /// Sets the per-request deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The worker count a server will actually spawn.
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// The write half of one client connection, shared between its reader
/// thread and every batch worker.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response frame; transport errors are swallowed (a
    /// vanished client is not the server's problem).
    fn send(&self, response: &Response) {
        if let Ok(mut stream) = self.stream.lock() {
            let _ = wire::write_response(&mut *stream, response);
        }
    }

    fn shutdown_read(&self) {
        if let Ok(stream) = self.stream.lock() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// One queued predict request.
struct Pending {
    id: u64,
    features: Vec<f64>,
    enqueued: Instant,
    conn: Arc<ConnWriter>,
}

/// State shared by the accept loop, readers, and workers.
struct Inner {
    model: SharedClassifier,
    config: ServeConfig,
    local_addr: SocketAddr,
    queue: Mutex<VecDeque<Pending>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    conns: Mutex<Vec<Arc<ConnWriter>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    /// Idempotent shutdown trigger: stops the accept loop, half-closes
    /// every connection's read side, and wakes all workers so they can
    /// drain the queue and exit.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop (it re-checks the flag per connection).
        let _ = TcpStream::connect(self.local_addr);
        let conns = self.conns.lock().expect("conns lock poisoned");
        for conn in conns.iter() {
            conn.shutdown_read();
        }
        drop(conns);
        self.work_ready.notify_all();
    }

    /// Enqueues one predict request, or answers immediately with a
    /// backpressure/shutdown rejection. The shutdown check happens under
    /// the queue lock so no request can slip in after the workers'
    /// drain-and-exit decision.
    fn enqueue(&self, conn: &Arc<ConnWriter>, id: u64, features: Vec<f64>) {
        let depth = {
            let mut queue = self.queue.lock().expect("queue lock poisoned");
            if self.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                conn.send(&Response::Error {
                    id,
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                });
                obs::counter("serve.responses.error", 1);
                return;
            }
            if queue.len() >= self.config.queue_cap {
                drop(queue);
                obs::counter("serve.overload_rejections", 1);
                obs::counter("serve.responses.error", 1);
                conn.send(&Response::Error {
                    id,
                    code: ErrorCode::Overloaded,
                    message: format!("request queue full ({} pending)", self.config.queue_cap),
                });
                return;
            }
            queue.push_back(Pending {
                id,
                features,
                enqueued: Instant::now(),
                conn: Arc::clone(conn),
            });
            queue.len()
        };
        obs::counter("serve.requests", 1);
        if obs::enabled() {
            // Dimensionless histogram: depth n recorded as n ns (see
            // DESIGN.md §9).
            obs::record("serve/queue_depth", Duration::from_nanos(depth as u64));
        }
        self.work_ready.notify_one();
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] and [`ServerHandle::join`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Triggers a graceful shutdown: no new connections or requests are
    /// accepted, queued requests are still answered. Idempotent; does
    /// not block — call [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }

    /// Whether a shutdown has been triggered (locally or by a
    /// [`Request::Shutdown`] frame).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has shut down (via [`ServerHandle::shutdown`]
    /// or a remote shutdown frame) and every thread has exited: the
    /// accept loop first, then all connection readers, then the batch
    /// workers after they drain the queue.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has exited, so no new readers can appear.
        let readers = std::mem::take(&mut *self.inner.readers.lock().expect("readers lock"));
        for reader in readers {
            let _ = reader.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `addr` and starts serving `model`. Returns once the listener is
/// live; use the handle to discover the bound port (`addr` may be
/// `127.0.0.1:0`), trigger shutdown, and join.
///
/// # Errors
///
/// Returns the bind error; everything after the bind is reported
/// per-connection over the wire.
pub fn start<A: ToSocketAddrs>(
    addr: A,
    model: SharedClassifier,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let inner = Arc::new(Inner {
        model,
        config,
        local_addr,
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        readers: Mutex::new(Vec::new()),
    });

    let workers = (0..config.effective_workers())
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();

    let accept = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&listener, &inner))
    };

    Ok(ServerHandle {
        inner,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small frames written one at a time; without
        // nodelay, Nagle holds each behind the previous frame's ACK.
        let _ = stream.set_nodelay(true);
        obs::counter("serve.connections", 1);
        let conn = match stream.try_clone() {
            Ok(write_half) => Arc::new(ConnWriter {
                stream: Mutex::new(write_half),
            }),
            Err(_) => continue,
        };
        inner
            .conns
            .lock()
            .expect("conns lock poisoned")
            .push(Arc::clone(&conn));
        let reader = {
            let inner = Arc::clone(inner);
            std::thread::spawn(move || {
                reader_loop(&inner, stream, &conn);
                // Forget the write half so a long-lived server does not
                // accumulate dead connections.
                let mut conns = inner.conns.lock().expect("conns lock poisoned");
                conns.retain(|c| !Arc::ptr_eq(c, &conn));
            })
        };
        inner
            .readers
            .lock()
            .expect("readers lock poisoned")
            .push(reader);
    }
}

/// Reads frames off one connection until EOF, transport error, or an
/// unrecoverable framing error.
fn reader_loop(inner: &Arc<Inner>, mut stream: TcpStream, conn: &Arc<ConnWriter>) {
    loop {
        match wire::read_request(&mut stream) {
            Err(WireError::Io(_)) => break,
            Err(e @ (WireError::TooLarge { .. } | WireError::Truncated { .. })) => {
                // The byte stream is no longer frame-aligned (an
                // over-cap length prefix or a mid-frame EOF): answer
                // with a protocol error and drop the connection.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
                break;
            }
            Err(e) => {
                // The frame arrived intact but its body was malformed;
                // framing is still aligned, so keep the connection.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
            }
            Ok(Request::Ping { id }) => conn.send(&Response::Pong { id }),
            Ok(Request::Shutdown { id }) => {
                conn.send(&Response::Pong { id });
                inner.trigger_shutdown();
                break;
            }
            Ok(Request::Predict { id, features }) => inner.enqueue(conn, id, features),
        }
    }
}

/// Pops batches off the queue until shutdown *and* the queue is drained.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = inner.queue.lock().expect("queue lock poisoned");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.work_ready.wait(queue).expect("queue lock poisoned");
            }
            let take = queue.len().min(inner.config.max_batch);
            queue.drain(..take).collect()
        };
        process_batch(inner, batch);
    }
}

fn process_batch(inner: &Arc<Inner>, batch: Vec<Pending>) {
    // Expire requests that waited past their deadline before spending any
    // inference time on them; expiry frees their queue slots for free.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for pending in batch {
        if now.duration_since(pending.enqueued) > inner.config.timeout {
            obs::counter("serve.deadline_misses", 1);
            obs::counter("serve.responses.error", 1);
            pending.conn.send(&Response::Error {
                id: pending.id,
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "request waited past the {} ms deadline",
                    inner.config.timeout.as_millis()
                ),
            });
            continue;
        }
        live.push(pending);
    }
    if live.is_empty() {
        return;
    }

    obs::counter("serve.batches", 1);
    if obs::enabled() {
        // Dimensionless histogram: batch of n recorded as n ns.
        obs::record("serve/batch_size", Duration::from_nanos(live.len() as u64));
    }

    let features: Vec<Vec<f64>> = live
        .iter_mut()
        .map(|p| std::mem::take(&mut p.features))
        .collect();
    let started = Instant::now();
    match inner.model.predict_batch(&features) {
        Ok(predictions) => {
            if obs::enabled() {
                obs::record("serve/batch", started.elapsed());
            }
            for (pending, class) in live.iter().zip(predictions) {
                respond_ok(pending, class);
            }
        }
        // The batch call propagates its *first* error, which would
        // poison every request sharing the batch; fall back to
        // per-request predictions so one bad feature vector only fails
        // its own request.
        Err(_) => {
            for (pending, feats) in live.iter().zip(&features) {
                match inner.model.predict(feats) {
                    Ok(class) => respond_ok(pending, class),
                    Err(e) => {
                        obs::counter("serve.responses.error", 1);
                        pending.conn.send(&Response::Error {
                            id: pending.id,
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        });
                    }
                }
            }
        }
    }
}

fn respond_ok(pending: &Pending, class: usize) {
    obs::counter("serve.responses.ok", 1);
    if obs::enabled() {
        obs::record("serve/request", pending.enqueued.elapsed());
    }
    pending.conn.send(&Response::Predict {
        id: pending.id,
        class: u32::try_from(class).unwrap_or(u32::MAX),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use hdc::{HdcError, Result};

    /// Classifies by sign of the first feature; errors on empty input.
    struct SignStub;

    impl hdc::Classifier for SignStub {
        fn num_classes(&self) -> usize {
            2
        }

        fn predict(&self, features: &[f64]) -> Result<usize> {
            match features.first() {
                Some(&v) => Ok(usize::from(v >= 0.0)),
                None => Err(HdcError::invalid_dataset("empty feature vector")),
            }
        }
    }

    fn start_stub(config: ServeConfig) -> ServerHandle {
        start("127.0.0.1:0", Arc::new(SignStub), config).expect("bind failed")
    }

    #[test]
    fn serves_predictions_and_pings() {
        let handle = start_stub(ServeConfig::new());
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(
            client.predict(1, &[2.5]).unwrap(),
            Response::Predict { id: 1, class: 1 }
        );
        assert_eq!(
            client.predict(2, &[-2.5]).unwrap(),
            Response::Predict { id: 2, class: 0 }
        );
        assert_eq!(client.ping(3).unwrap(), Response::Pong { id: 3 });
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_feature_vectors_fail_alone_in_a_batch() {
        let handle = start_stub(ServeConfig::new().with_max_batch(8));
        let mut client = Client::connect(handle.addr()).unwrap();
        // Pipeline a good, an empty (model-rejected), and another good
        // request so they can share a batch.
        client
            .send(&Request::Predict {
                id: 1,
                features: vec![1.0],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 2,
                features: vec![],
            })
            .unwrap();
        client
            .send(&Request::Predict {
                id: 3,
                features: vec![-1.0],
            })
            .unwrap();
        let mut ok = 0;
        let mut errors = 0;
        for _ in 0..3 {
            match client.recv().unwrap() {
                Response::Predict { id, class } => {
                    ok += 1;
                    assert_eq!(class, usize::from(id == 1) as u32);
                }
                Response::Error { id, code, .. } => {
                    errors += 1;
                    assert_eq!(id, 2);
                    assert_eq!(code, ErrorCode::BadRequest);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!((ok, errors), (2, 1));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn remote_shutdown_frame_stops_the_server() {
        let handle = start_stub(ServeConfig::new());
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.shutdown_server(9).unwrap(), Response::Pong { id: 9 });
        handle.join();
        // The listener is gone: new connections are refused (allow a
        // moment for the OS to tear the socket down).
        std::thread::sleep(Duration::from_millis(20));
        assert!(Client::connect(addr).is_err());
    }

    #[test]
    fn config_builder_clamps_and_chains() {
        let c = ServeConfig::new()
            .with_workers(4)
            .with_max_batch(0)
            .with_queue_cap(0)
            .with_timeout(Duration::from_millis(5));
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.queue_cap, 1);
        assert_eq!(c.timeout, Duration::from_millis(5));
        assert!(ServeConfig::new().with_workers(0).effective_workers() >= 1);
    }
}
