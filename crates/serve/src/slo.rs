//! SLO-aware health: multi-window burn rates over the obs window ring.
//!
//! The admin `/healthz` route originally answered an unconditional
//! `ok` — useless to a load balancer deciding whether to keep routing
//! traffic here. This module turns the windowed telemetry the registry
//! already keeps (last-10-s and last-60-s aggregates, see
//! [`obs::WindowAgg`]) into an actionable health verdict:
//!
//! * **Draining** — the server took a shutdown and is finishing queued
//!   work; new traffic belongs elsewhere immediately.
//! * **Sustained admission shed** — the admission tiers
//!   (`serve.conn_rejections`, `serve.accept_sheds`,
//!   `serve.overload_rejections`) are rejecting work in the short window
//!   *and* were already rejecting before it (`w60 > w10`): not a blip
//!   but a standing overload.
//! * **SLO burn** — the operator declared a p99 latency target
//!   (`--slo-p99-ms`) and/or an error-rate target (`--slo-error-rate`),
//!   and the measured value exceeds it in **both** windows. Requiring
//!   the short and the long window to burn together is the classic
//!   multi-window alerting rule: one slow request cannot flap the
//!   health bit (the long window stays clean), and a recovered server
//!   goes healthy as soon as the short window clears even while the
//!   long window still remembers the incident... the *burn rate* —
//!   measured / target — is reported per window so dashboards can graph
//!   how far over budget the server runs, not just that it is.
//!
//! [`HealthState`] is shared between the serving core (which flips the
//! draining bit on shutdown) and the admin listener (which calls
//! [`HealthState::evaluate`] per `/healthz` or `/slo.json` scrape).
//! Evaluation reads a fresh [`obs::snapshot`] — nothing here touches
//! the request hot path.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// The span whose windowed p99 the latency SLO is judged against.
const REQUEST_SPAN: &str = "serve/request";

/// Counters that terminate requests successfully / unsuccessfully; the
/// error-rate SLO is `error / (ok + error)` per window.
const OK_COUNTER: &str = "serve.responses.ok";
const ERROR_COUNTER: &str = "serve.responses.error";

/// Admission-control rejection counters; any of them firing means work
/// was turned away at the door.
const SHED_COUNTERS: &[&str] = &[
    "serve.conn_rejections",
    "serve.accept_sheds",
    "serve.overload_rejections",
];

/// Operator-declared service-level objectives. Both axes are optional;
/// with neither set, health still reflects draining and sustained-shed
/// state. Targets are stored as integers (nanoseconds / parts per
/// million) so the config stays `Eq` and exactly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloConfig {
    p99_ns: Option<u64>,
    error_ppm: Option<u64>,
}

impl SloConfig {
    /// No objectives: `/healthz` degrades only on draining or sustained
    /// shed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a p99 latency target for the `serve/request` span, in
    /// milliseconds (fractions allowed; clamped up to 1 µs so a zero
    /// target cannot make every request a violation).
    pub fn with_p99_ms(mut self, ms: f64) -> Self {
        self.p99_ns = Some(((ms * 1e6) as u64).max(1_000));
        self
    }

    /// Declares an error-rate target: the allowed fraction of responses
    /// answered with an error, in `[0, 1]` (e.g. `0.01` = 1%). Clamped
    /// up to one per million so burn rates stay finite.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_ppm = Some(((rate.clamp(0.0, 1.0) * 1e6) as u64).max(1));
        self
    }

    /// The latency target in nanoseconds, when declared.
    pub fn p99_ns(&self) -> Option<u64> {
        self.p99_ns
    }

    /// The error-rate target as a fraction, when declared.
    pub fn error_rate(&self) -> Option<f64> {
        self.error_ppm.map(|ppm| ppm as f64 / 1e6)
    }

    /// Whether any objective was declared.
    pub fn is_configured(&self) -> bool {
        self.p99_ns.is_some() || self.error_ppm.is_some()
    }
}

/// One SLO axis evaluated against both windows: the measured value, the
/// burn rate (measured / target), and the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAxis {
    /// The declared target (nanoseconds for latency, fraction for
    /// errors).
    pub target: f64,
    /// Measured value over the short (10 s) window.
    pub w10: f64,
    /// Measured value over the long (60 s) window.
    pub w60: f64,
    /// `w10 / target`.
    pub burn10: f64,
    /// `w60 / target`.
    pub burn60: f64,
}

impl SloAxis {
    fn new(target: f64, w10: f64, w60: f64) -> Self {
        Self {
            target,
            w10,
            w60,
            burn10: w10 / target,
            burn60: w60 / target,
        }
    }

    /// Multi-window breach: both the short and the long window exceed
    /// the target.
    pub fn breached(&self) -> bool {
        self.burn10 > 1.0 && self.burn60 > 1.0
    }
}

/// A point-in-time health verdict (see [`HealthState::evaluate`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Health {
    /// Draining: shutdown triggered, queued work still completing.
    pub draining: bool,
    /// Sustained admission shed: rejections in the short window on top
    /// of rejections predating it.
    pub shedding: bool,
    /// Shed counts backing the verdict: `(w10, w60)` sums over the
    /// admission-rejection counters.
    pub shed_counts: (u64, u64),
    /// The latency axis, when a p99 target is declared.
    pub p99: Option<SloAxis>,
    /// The error-rate axis, when a target is declared.
    pub errors: Option<SloAxis>,
}

impl Health {
    /// Healthy = not draining, not in sustained shed, and no declared
    /// SLO burning in both windows.
    pub fn healthy(&self) -> bool {
        self.reason().is_none()
    }

    /// The first (most severe) reason this server is unhealthy, `None`
    /// when healthy. Severity order: draining (never route here again),
    /// then sustained shed (actively refusing work), then SLO burn
    /// (accepting work but violating its objectives).
    pub fn reason(&self) -> Option<String> {
        if self.draining {
            return Some("draining: shutdown in progress".to_owned());
        }
        if self.shedding {
            return Some(format!(
                "shedding: admission rejections sustained (w10={}, w60={})",
                self.shed_counts.0, self.shed_counts.1
            ));
        }
        if let Some(p99) = &self.p99 {
            if p99.breached() {
                return Some(format!(
                    "slo burn: p99 {:.3} ms over both windows (target {:.3} ms, burn w10={:.2}x w60={:.2}x)",
                    p99.w10 / 1e6,
                    p99.target / 1e6,
                    p99.burn10,
                    p99.burn60
                ));
            }
        }
        if let Some(errors) = &self.errors {
            if errors.breached() {
                return Some(format!(
                    "slo burn: error rate {:.4} over both windows (target {:.4}, burn w10={:.2}x w60={:.2}x)",
                    errors.w10, errors.target, errors.burn10, errors.burn60
                ));
            }
        }
        None
    }

    /// Renders the verdict as the `/slo.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\n  \"healthy\": {},\n  \"draining\": {},\n  \"shedding\": {},\n  \"shed\": {{\"w10\": {}, \"w60\": {}}}",
            self.healthy(),
            self.draining,
            self.shedding,
            self.shed_counts.0,
            self.shed_counts.1
        );
        let axis = |out: &mut String, key: &str, axis: &Option<SloAxis>, scale: f64, unit: &str| {
            match axis {
                Some(a) => {
                    let _ = write!(
                        out,
                        ",\n  \"{key}\": {{\"target_{unit}\": {:.6}, \"w10_{unit}\": {:.6}, \"w60_{unit}\": {:.6}, \"burn10\": {:.6}, \"burn60\": {:.6}, \"breached\": {}}}",
                        a.target / scale,
                        a.w10 / scale,
                        a.w60 / scale,
                        a.burn10,
                        a.burn60,
                        a.breached()
                    );
                }
                None => {
                    let _ = write!(out, ",\n  \"{key}\": null");
                }
            }
        };
        axis(&mut out, "p99", &self.p99, 1e6, "ms");
        axis(&mut out, "error_rate", &self.errors, 1.0, "frac");
        match self.reason() {
            Some(reason) => {
                let _ = write!(out, ",\n  \"reason\": \"{}\"", reason.replace('"', "'"));
            }
            None => out.push_str(",\n  \"reason\": null"),
        }
        out.push_str("\n}\n");
        out
    }
}

/// Health state shared by the serving core and the admin listener. The
/// core flips the draining bit on shutdown; the admin listener calls
/// [`HealthState::evaluate`] per scrape.
#[derive(Debug, Default)]
pub struct HealthState {
    draining: AtomicBool,
    slo: SloConfig,
}

impl HealthState {
    /// A live (non-draining) health state judging against `slo`.
    pub fn new(slo: SloConfig) -> Self {
        Self {
            draining: AtomicBool::new(false),
            slo,
        }
    }

    /// The objectives this state judges against.
    pub fn slo(&self) -> &SloConfig {
        &self.slo
    }

    /// Marks the server as draining (idempotent; never unset — a
    /// drained server restarts rather than un-drains).
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the draining bit is set.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Judges `snapshot` against the draining bit, the sustained-shed
    /// rule, and the declared objectives.
    pub fn evaluate(&self, snapshot: &obs::Snapshot) -> Health {
        let shed10: u64 = SHED_COUNTERS
            .iter()
            .map(|name| windowed_counter(snapshot, name).0)
            .sum();
        let shed60: u64 = SHED_COUNTERS
            .iter()
            .map(|name| windowed_counter(snapshot, name).1)
            .sum();

        let p99 = self.slo.p99_ns.map(|target| {
            // The span is judged across all its label sets (it has none
            // today; summing keeps the rule stable if it gains some).
            let (w10, w60) = snapshot
                .spans
                .iter()
                .filter(|s| s.path == REQUEST_SPAN)
                .fold((0u64, 0u64), |(a, b), s| {
                    (a.max(s.w10.p99_ns), b.max(s.w60.p99_ns))
                });
            SloAxis::new(target as f64, w10 as f64, w60 as f64)
        });

        let errors = self.slo.error_rate().map(|target| {
            let (ok10, ok60) = windowed_counter(snapshot, OK_COUNTER);
            let (err10, err60) = windowed_counter(snapshot, ERROR_COUNTER);
            let rate = |err: u64, ok: u64| {
                let total = err + ok;
                if total == 0 {
                    0.0
                } else {
                    err as f64 / total as f64
                }
            };
            SloAxis::new(target, rate(err10, ok10), rate(err60, ok60))
        });

        Health {
            draining: self.is_draining(),
            // Sustained: shedding inside the short window *and* before
            // it (the long window holds strictly more).
            shedding: shed10 > 0 && shed60 > shed10,
            shed_counts: (shed10, shed60),
            p99,
            errors,
        }
    }
}

/// `(w10, w60)` sums of counter `name` across all of its label sets.
fn windowed_counter(snapshot: &obs::Snapshot, name: &str) -> (u64, u64) {
    snapshot
        .counters
        .iter()
        .filter(|c| c.name == name)
        .fold((0, 0), |(a, b), c| (a + c.w10, b + c.w60))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use crate::obs_test_guard;

    #[test]
    fn slo_config_roundtrips_and_clamps() {
        let slo = SloConfig::new().with_p99_ms(2.5).with_error_rate(0.01);
        assert_eq!(slo.p99_ns(), Some(2_500_000));
        assert!((slo.error_rate().unwrap() - 0.01).abs() < 1e-9);
        assert!(slo.is_configured());
        // Zero targets clamp instead of dividing by zero.
        let zero = SloConfig::new().with_p99_ms(0.0).with_error_rate(0.0);
        assert_eq!(zero.p99_ns(), Some(1_000));
        assert!(zero.error_rate().unwrap() > 0.0);
        assert!(!SloConfig::new().is_configured());
    }

    #[test]
    fn draining_and_shed_rules() {
        let _guard = obs_test_guard();
        obs::reset();
        obs::set_enabled(true);

        let state = HealthState::new(SloConfig::new());
        let snap = obs::snapshot();
        assert!(state.evaluate(&snap).healthy());

        // Shed only inside the short window: a blip, still healthy.
        obs::set_window_epoch_for_test(1000);
        obs::counter("serve.accept_sheds", 3);
        let health = state.evaluate(&obs::snapshot());
        assert!(health.healthy(), "blip must not degrade: {health:?}");
        assert_eq!(health.shed_counts, (3, 3));

        // Shed before the short window too: sustained, unhealthy.
        obs::set_window_epoch_for_test(1010);
        obs::counter("serve.overload_rejections", 2);
        let health = state.evaluate(&obs::snapshot());
        assert!(health.shedding);
        assert!(!health.healthy());
        assert!(health.reason().unwrap().contains("shedding"), "{health:?}");

        state.set_draining();
        let health = state.evaluate(&obs::snapshot());
        assert!(health.draining);
        assert!(health.reason().unwrap().contains("draining"));

        obs::set_window_epoch_for_test(0);
        obs::set_enabled(false);
        obs::reset();
    }

    #[test]
    fn multi_window_burn_requires_both_windows() {
        let _guard = obs_test_guard();
        obs::reset();
        obs::set_enabled(true);
        let state = HealthState::new(SloConfig::new().with_p99_ms(1.0).with_error_rate(0.10));

        // Old slow traffic: only the long window sees it.
        obs::set_window_epoch_for_test(2000);
        for _ in 0..20 {
            obs::record("serve/request", Duration::from_millis(50));
            obs::counter("serve.responses.error", 1);
        }
        // Recent traffic is fast and clean.
        obs::set_window_epoch_for_test(2012);
        for _ in 0..20 {
            obs::record("serve/request", Duration::from_micros(100));
            obs::counter("serve.responses.ok", 1);
        }
        let health = state.evaluate(&obs::snapshot());
        let p99 = health.p99.unwrap();
        assert!(p99.burn60 > 1.0, "{p99:?}");
        assert!(p99.burn10 <= 1.0, "{p99:?}");
        assert!(!p99.breached());
        assert!(!health.errors.unwrap().breached());
        assert!(health.healthy(), "{health:?}");

        // Slow + erroring traffic in the short window as well: burn.
        for _ in 0..20 {
            obs::record("serve/request", Duration::from_millis(80));
            obs::counter("serve.responses.error", 1);
        }
        let health = state.evaluate(&obs::snapshot());
        assert!(health.p99.unwrap().breached());
        assert!(health.errors.unwrap().breached());
        assert!(!health.healthy());
        let json = health.to_json();
        assert!(json.contains("\"healthy\": false"), "{json}");
        assert!(json.contains("\"breached\": true"), "{json}");
        assert!(json.contains("\"reason\": \"slo burn"), "{json}");

        obs::set_window_epoch_for_test(0);
        obs::set_enabled(false);
        obs::reset();
    }
}
