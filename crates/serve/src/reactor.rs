//! The readiness-driven I/O reactor.
//!
//! Each reactor thread owns an **edge-triggered** [`netpoll::Poller`]
//! plus the connection state machines assigned to it: the
//! per-connection [`wire::FrameDecoder`] read buffer (frames are
//! borrowed `&[u8]` slices out of it — zero copies, zero per-frame
//! allocations), the epoll interest set, and (shared with workers
//! through [`Conn`]) the write-backpressure outbox.
//!
//! ## Accept sharding
//!
//! With `SO_REUSEPORT` available (Linux), **every** reactor owns its
//! own listener bound to the same address and adopts its accepts
//! directly — the kernel shards incoming connections across listeners
//! by flow hash, so there is no shared accept path at all. Where
//! REUSEPORT is unavailable the server falls back to a single listener
//! on reactor 0, which hands connections to reactors round-robin.
//!
//! ## Edge-triggered readiness + the read-budget rule
//!
//! Under `EPOLLET` the poller reports a socket once per readiness
//! *transition*: an undrained socket is never re-reported, so the
//! reactor keeps its own ready queue. A readable event enqueues the
//! connection; each loop iteration runs one **round** over the queue,
//! giving every ready connection an equal slice of the round's read
//! budget — `ROUND_READ_BYTES / ready-connections`, clamped to
//! [[`MIN_READ_BUDGET`], [`MAX_READ_BUDGET`]]. A connection drained to
//! `WouldBlock` (or EOF) leaves the queue; one that exhausts its slice
//! with bytes still pending goes to the back and counts one
//! `serve.fairness_deferrals` — a firehose client pipelining thousands
//! of requests gets throughput, not a monopoly.
//!
//! Only the owning reactor ever touches a connection's epoll
//! registration. Other threads request changes through the reactor's
//! [`ReactorQueue`] — a command list plus a [`netpoll::Waker`] — which
//! the reactor drains at the top of every loop iteration. This keeps
//! all `epoll_ctl` calls single-threaded and race-free.
//!
//! ## Admission control tiers
//!
//! 1. **connection cap** — at accept, a server already holding
//!    [`ServeConfig::max_conns`] connections answers with one
//!    [`ErrorCode::Overloaded`] frame and closes
//!    (`serve.conn_rejections`);
//! 2. **queue-pressure shed** — at accept, a full request queue sheds
//!    the new connection the same way (`serve.accept_sheds`): a
//!    saturated server stops taking on new clients before it stops
//!    answering existing ones;
//! 3. **slow-client drop** — a connection whose outbox exceeds
//!    [`crate::conn::OUTBOX_CAP`] is condemned
//!    (`serve.slow_client_drops`);
//! 4. **per-request backpressure** — the existing
//!    [`ErrorCode::Overloaded`] rejection when the bounded queue is
//!    full (`serve.overload_rejections`), unchanged.
//!
//! ## Drain protocol
//!
//! Shutdown is event-driven (no self-connect): the trigger sets the
//! flag and wakes every reactor and worker. Each reactor then drops
//! its listener, parks all read interest, and keeps
//! flushing outboxes. Workers drain the queue and exit;
//! [`crate::ServerHandle::join`] then sets the `drained` flag and
//! wakes the reactors again, which now close every connection as its
//! outbox empties and exit — with a [`DRAIN_GRACE`] bound so a client
//! that never reads its last bytes cannot wedge the join.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use netpoll::{Event, Interest, Poller, WAKER_TOKEN};
use obs::trace::{self, Phase};

use crate::conn::{Conn, Flush};
use crate::server::{Inner, TrainCmd};
use crate::wire::{self, ErrorCode, FrameDecoder, Request, Response, WireError};

/// Records the `serve/decode` histogram sample and, for traced
/// requests, the decode begin/end trace pair. Shared by every request
/// kind that leaves the reactor thread.
fn record_decode(trace_id: u64, decode_begin_ns: u64) {
    if obs::enabled() {
        let decode_end_ns = trace::now_ns();
        obs::record(
            "serve/decode",
            Duration::from_nanos(decode_end_ns.saturating_sub(decode_begin_ns)),
        );
        if trace_id != 0 && trace::enabled() {
            trace::emit_at("decode", trace_id, Phase::Begin, decode_begin_ns);
            trace::emit_at("decode", trace_id, Phase::End, decode_end_ns);
        }
    }
}

/// Token reserved for the reactor's listener. [`WAKER_TOKEN`] is
/// `u64::MAX`; connection tokens count up from zero and can never
/// collide with either.
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Total read budget one ready-round distributes across the
/// connections in the ready queue (the adaptive read-budget rule).
const ROUND_READ_BYTES: usize = 256 * 1024;

/// Floor of the per-connection slice: even with hundreds of ready
/// connections each gets enough to make progress on a max-size frame.
const MIN_READ_BUDGET: usize = 16 * 1024;

/// Ceiling of the per-connection slice: a lone ready connection still
/// yields to commands and accepts after this many bytes.
const MAX_READ_BUDGET: usize = 256 * 1024;

/// Read-syscall chunk size (the granularity of decoder buffer growth).
const READ_CHUNK: usize = 16 * 1024;

/// Accepts taken in one burst before the reactor yields to its ready
/// round (the listener goes back on the pending list, not dropped).
const ACCEPT_ROUND_MAX: usize = 256;

/// How long after the workers drain a reactor keeps flushing outboxes
/// before force-closing what remains.
pub(crate) const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// What a budgeted read drain decided once the decoder is restored.
enum ReadOutcome {
    /// Keep reading (the chunk was consumed without incident).
    Continue,
    /// The socket reported `WouldBlock`: fully drained.
    Drained,
    /// Clean EOF.
    Eof,
    /// Transport error.
    Error,
    /// Dispatch condemned the stream (framing damage or shutdown).
    Condemn,
    /// The decoder rejected a length prefix; answer then condemn.
    BadFrame(WireError),
}

/// Cross-thread requests to a reactor.
enum Command {
    /// Adopt a newly accepted connection.
    Adopt(TcpStream),
    /// The connection has backlogged response bytes: flush and watch
    /// `EPOLLOUT` until empty.
    Flush(u64),
    /// Re-evaluate the connection (last in-flight response finished,
    /// or it was condemned off-thread).
    Check(u64),
}

/// The handle other threads use to talk to a reactor: a command list
/// drained at the top of each loop iteration, plus the waker that
/// interrupts its `wait`.
pub(crate) struct ReactorQueue {
    waker: netpoll::Waker,
    commands: Mutex<Vec<Command>>,
}

impl ReactorQueue {
    pub(crate) fn new(waker: netpoll::Waker) -> Self {
        Self {
            waker,
            commands: Mutex::new(Vec::new()),
        }
    }

    /// Wakes the reactor with no command (shutdown/drain flag polls).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    fn push(&self, command: Command) {
        self.commands
            .lock()
            .expect("reactor command lock poisoned")
            .push(command);
        self.waker.wake();
    }

    fn adopt(&self, stream: TcpStream) {
        self.push(Command::Adopt(stream));
    }

    /// Asks the reactor to flush the connection's outbox.
    pub(crate) fn flush(&self, token: u64) {
        self.push(Command::Flush(token));
    }

    /// Asks the reactor to re-evaluate the connection for teardown.
    pub(crate) fn check(&self, token: u64) {
        self.push(Command::Check(token));
    }

    fn drain(&self) -> Vec<Command> {
        std::mem::take(&mut *self.commands.lock().expect("reactor command lock poisoned"))
    }
}

/// Reactor-private view of one connection: the shared [`Conn`] plus
/// state only the owning reactor touches.
struct ConnState {
    conn: Arc<Conn>,
    decoder: FrameDecoder,
    interest: Interest,
    /// Queued in the reactor's ready round: readable bytes may remain
    /// undrained (edge-triggered events will not re-report them).
    read_pending: bool,
}

/// One reactor thread's whole state. Constructed on the spawning
/// thread, moved into the reactor thread, and run to completion.
pub(crate) struct Reactor {
    inner: Arc<Inner>,
    poller: Poller,
    queue: Arc<ReactorQueue>,
    /// This reactor's listener: every reactor owns one under REUSEPORT
    /// sharding; only reactor 0 in single-listener fallback mode.
    listener: Option<TcpListener>,
    /// With sharding each reactor adopts its own accepts; without it,
    /// reactor 0 hands connections out round-robin over these queues.
    sharded: bool,
    /// All reactors' queues, for round-robin connection assignment.
    peers: Vec<Arc<ReactorQueue>>,
    next_peer: usize,
    /// Pre-interned `serve.reactor.frames{reactor=}` handle: one bump
    /// per dispatched frame attributes wire traffic to this reactor
    /// without allocating on the event loop.
    frames_id: obs::MetricId,
    conns: HashMap<u64, ConnState>,
    /// Connections with potentially undrained readable bytes, served
    /// one budgeted round per loop iteration.
    ready: VecDeque<u64>,
    /// The accept burst cap was hit (or accepts hit a transient error
    /// streak): resume accepting next iteration without blocking.
    accept_pending: bool,
    events: Vec<Event>,
    shutdown_seen: bool,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        index: usize,
        inner: Arc<Inner>,
        poller: Poller,
        queue: Arc<ReactorQueue>,
        listener: Option<TcpListener>,
        sharded: bool,
        peers: Vec<Arc<ReactorQueue>>,
    ) -> Self {
        let frames_id =
            obs::intern_counter("serve.reactor.frames", &[("reactor", &index.to_string())]);
        Self {
            inner,
            poller,
            queue,
            listener,
            sharded,
            peers,
            next_peer: 0,
            frames_id,
            conns: HashMap::new(),
            ready: VecDeque::new(),
            accept_pending: false,
            events: Vec::new(),
            shutdown_seen: false,
            drain_deadline: None,
        }
    }

    /// The event loop. Returns when the server has fully drained.
    pub(crate) fn run(mut self) {
        if let Some(listener) = &self.listener {
            if listener.set_nonblocking(true).is_err()
                || self
                    .poller
                    .register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READABLE)
                    .is_err()
            {
                // A reactor that cannot watch its listener cannot serve;
                // surface the failure as an immediate shutdown.
                self.inner.trigger_shutdown();
            }
        }
        loop {
            // Edge-triggered: undrained work is ours to remember. With a
            // ready round (or deferred accepts) pending, poll without
            // blocking so new events interleave with the backlog.
            let timeout = if !self.ready.is_empty() || self.accept_pending {
                Some(Duration::ZERO)
            } else {
                self.drain_deadline
                    .map(|d| d.saturating_duration_since(Instant::now()))
            };
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for command in self.queue.drain() {
                self.handle_command(command);
            }
            let resume_accepts = self.accept_pending;
            for event in &events {
                match event.token {
                    WAKER_TOKEN => {}
                    LISTEN_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, event),
                }
            }
            if resume_accepts {
                self.accept_ready();
            }
            self.events = events;
            self.run_ready_round();
            self.poll_shutdown();
            if self.finished() {
                break;
            }
        }
        for (_, state) in self.conns.drain() {
            let _ = self.poller.deregister(state.conn.fd());
            state.conn.close();
            self.inner.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    // -- commands -----------------------------------------------------------

    fn handle_command(&mut self, command: Command) {
        match command {
            Command::Adopt(stream) => self.adopt(stream),
            Command::Flush(token) => {
                let Some(state) = self.conns.get(&token) else {
                    return;
                };
                match state.conn.flush_outbox() {
                    Flush::Empty => self.after_flush_empty(token),
                    Flush::Pending => self.want(token, Interest::WRITABLE, true),
                    Flush::Dead => self.teardown(token),
                }
            }
            Command::Check(token) => {
                if self
                    .conns
                    .get(&token)
                    .is_some_and(|state| state.conn.is_reapable())
                {
                    self.teardown(token);
                }
            }
        }
    }

    // -- accept + admission -------------------------------------------------

    /// Drains the accept queue to `WouldBlock` — mandatory under
    /// edge-triggered polling, where an undrained listener is never
    /// re-reported. Bursts are capped (and error streaks bounded, so an
    /// fd-exhausted accept cannot spin): both cases park the listener
    /// on `accept_pending` and resume next iteration.
    fn accept_ready(&mut self) {
        self.accept_pending = false;
        let mut accepted = 0usize;
        let mut errors = 0usize;
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    errors = 0;
                    self.admit(stream);
                    accepted += 1;
                    if accepted >= ACCEPT_ROUND_MAX {
                        self.accept_pending = true;
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection failures (ECONNABORTED & co)
                // consume the queue slot: keep draining. A persistent
                // streak (EMFILE never consumes its slot) defers instead
                // of spinning.
                Err(_) => {
                    errors += 1;
                    if errors >= 16 {
                        self.accept_pending = true;
                        return;
                    }
                }
            }
        }
    }

    /// Tiered admission: connection cap, then queue-pressure shed, then
    /// hand the connection to a reactor.
    fn admit(&mut self, stream: TcpStream) {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let config = &self.inner.config;
        if self.inner.conn_count.load(Ordering::SeqCst) >= config.max_conns {
            obs::counter("serve.conn_rejections", 1);
            reject(
                stream,
                format!("connection limit reached ({} open)", config.max_conns),
            );
            return;
        }
        let queue_full = {
            let queue = self.inner.queue.lock().expect("queue lock poisoned");
            queue.len() >= config.queue_cap
        };
        if queue_full {
            obs::counter("serve.accept_sheds", 1);
            reject(
                stream,
                format!(
                    "request queue full ({} pending); shedding new connections",
                    config.queue_cap
                ),
            );
            return;
        }
        obs::counter("serve.connections", 1);
        self.inner.conn_count.fetch_add(1, Ordering::SeqCst);
        if self.sharded {
            // REUSEPORT sharding: the kernel already picked this
            // reactor; adopt locally, no cross-thread handoff.
            self.adopt(stream);
            return;
        }
        let peer = self.next_peer;
        self.next_peer = (self.next_peer + 1) % self.peers.len();
        if Arc::ptr_eq(&self.peers[peer], &self.queue) {
            self.adopt(stream);
        } else {
            self.peers[peer].adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        let token = self.inner.next_token.fetch_add(1, Ordering::SeqCst);
        let conn = match Conn::new(stream, token, Arc::clone(&self.queue)) {
            Ok(conn) => Arc::new(conn),
            Err(_) => {
                self.inner.conn_count.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        };
        // A connection adopted after shutdown is parked immediately; the
        // drain logic below closes it.
        let interest = if self.shutdown_seen {
            conn.mark_read_shut();
            Interest::NONE
        } else {
            Interest::READABLE
        };
        if self.poller.register(conn.fd(), token, interest).is_err() {
            conn.close();
            self.inner.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.conns.insert(
            token,
            ConnState {
                conn,
                decoder: FrameDecoder::new(),
                interest,
                read_pending: false,
            },
        );
    }

    // -- per-connection events ----------------------------------------------

    fn conn_event(&mut self, token: u64, event: &Event) {
        let Some(state) = self.conns.get(&token) else {
            return;
        };
        let conn = Arc::clone(&state.conn);
        if event.hangup {
            // Hard errors (EPOLLERR/EPOLLHUP): the socket is gone in
            // both directions, and edge-triggered delivery will not
            // repeat the event — drain any final readable bytes now
            // (budget-free; the connection is dying anyway), then tear
            // down whatever remains.
            if event.readable && !conn.is_read_shut() {
                self.read_ready(token, &conn, usize::MAX);
            }
            if self.conns.contains_key(&token) {
                self.teardown(token);
            }
            return;
        }
        if event.writable {
            match conn.flush_outbox() {
                Flush::Empty => {
                    self.after_flush_empty(token);
                    if !self.conns.contains_key(&token) {
                        return;
                    }
                }
                Flush::Pending => {}
                Flush::Dead => {
                    self.teardown(token);
                    return;
                }
            }
        }
        if event.readable && !conn.is_read_shut() {
            // Edge-triggered: remember the readiness; the budgeted
            // ready round does the actual reads.
            self.mark_read_pending(token);
        }
    }

    /// Queues a connection for the ready round (idempotent).
    fn mark_read_pending(&mut self, token: u64) {
        if let Some(state) = self.conns.get_mut(&token) {
            if !state.read_pending && !state.conn.is_read_shut() {
                state.read_pending = true;
                self.ready.push_back(token);
            }
        }
    }

    /// One fairness round: every queued connection gets an equal slice
    /// of [`ROUND_READ_BYTES`] (clamped); a connection that exhausts
    /// its slice with bytes still unread is deferred to the next round
    /// and counted in `serve.fairness_deferrals`.
    fn run_ready_round(&mut self) {
        let in_round = self.ready.len();
        if in_round == 0 {
            return;
        }
        let budget = (ROUND_READ_BYTES / in_round).clamp(MIN_READ_BUDGET, MAX_READ_BUDGET);
        for _ in 0..in_round {
            let Some(token) = self.ready.pop_front() else {
                break;
            };
            let Some(state) = self.conns.get_mut(&token) else {
                continue;
            };
            state.read_pending = false;
            let conn = Arc::clone(&state.conn);
            if conn.is_read_shut() {
                continue;
            }
            self.read_ready(token, &conn, budget);
        }
    }

    /// After the outbox drains: reap a finished connection, otherwise
    /// drop `EPOLLOUT` from its interest set.
    fn after_flush_empty(&mut self, token: u64) {
        let Some(state) = self.conns.get(&token) else {
            return;
        };
        if state.conn.is_reapable() || (self.drained() && !state.conn.has_backlog()) {
            self.teardown(token);
            return;
        }
        let read = !state.conn.is_read_shut();
        self.want(
            token,
            if read {
                Interest::READABLE
            } else {
                Interest::NONE
            },
            false,
        );
    }

    /// Drains the socket toward `WouldBlock` within `budget` bytes,
    /// reading straight into the connection's [`FrameDecoder`] buffer
    /// and dispatching each completed frame as a slice **borrowed**
    /// from it — the hot path allocates nothing per frame. The decoder
    /// is temporarily taken out of the connection state so borrowed
    /// frame bodies and `&mut self` dispatch can coexist; it is
    /// restored before any exit (unless the connection is gone).
    fn read_ready(&mut self, token: u64, conn: &Arc<Conn>, budget: usize) {
        let mut remaining = budget;
        loop {
            let Some(state) = self.conns.get_mut(&token) else {
                return;
            };
            let mut decoder = std::mem::take(&mut state.decoder);
            let want = READ_CHUNK.min(remaining);
            let read = conn.read_into(&mut decoder.space(want)[..want]);
            // What to do once the decoder is back in place.
            let mut outcome = ReadOutcome::Continue;
            match read {
                Ok(0) => outcome = ReadOutcome::Eof,
                Ok(n) => {
                    decoder.commit(n);
                    remaining = remaining.saturating_sub(n);
                    loop {
                        match decoder.next_frame() {
                            Ok(Some(body)) => {
                                if !self.dispatch(conn, body) {
                                    // Framing damage mid-pipeline: stop
                                    // reading; frames already dispatched
                                    // stay answered.
                                    outcome = ReadOutcome::Condemn;
                                    break;
                                }
                                if self.inner.shutdown.load(Ordering::SeqCst) {
                                    // A Shutdown frame in this chunk:
                                    // everything after it is discarded,
                                    // like the blocking loop's `break`.
                                    outcome = ReadOutcome::Condemn;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                outcome = ReadOutcome::BadFrame(e);
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    outcome = ReadOutcome::Drained;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transport error: the client is gone; close silently
                // (matching the blocking loop's `WireError::Io` arm).
                Err(_) => outcome = ReadOutcome::Error,
            }
            if let Some(state) = self.conns.get_mut(&token) {
                state.decoder = decoder;
            } else {
                return;
            }
            match outcome {
                ReadOutcome::Continue => {}
                ReadOutcome::Drained => return,
                ReadOutcome::Eof => {
                    self.read_finished(token, conn, true);
                    return;
                }
                ReadOutcome::Error => {
                    self.read_finished(token, conn, false);
                    return;
                }
                ReadOutcome::Condemn => {
                    self.condemn_read(token, conn);
                    return;
                }
                ReadOutcome::BadFrame(e) => {
                    // Over-cap length prefix: answer, then drop the
                    // connection (the stream is no longer frame-aligned).
                    obs::counter("serve.bad_frames", 1);
                    conn.send(&Response::Error {
                        id: 0,
                        trace_id: 0,
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    });
                    self.condemn_read(token, conn);
                    return;
                }
            }
            if remaining == 0 {
                // Budget exhausted with the socket possibly still
                // holding bytes: edge-triggered epoll will not remind
                // us, so defer the connection to the next ready round.
                obs::counter("serve.fairness_deferrals", 1);
                self.mark_read_pending(token);
                return;
            }
        }
    }

    /// Handles one complete frame body. Returns `false` when the frame
    /// was damaged in a way that poisons stream alignment.
    fn dispatch(&mut self, conn: &Arc<Conn>, body: &[u8]) -> bool {
        obs::counter_id(self.frames_id, 1);
        let decode_begin_ns = if obs::enabled() { trace::now_ns() } else { 0 };
        match wire::decode_request(body) {
            Err(e @ (WireError::TooLarge { .. } | WireError::Truncated { .. })) => {
                // A lying in-body count (the frame held fewer bytes than
                // its fields claim): treated as alignment damage, answer
                // and drop the connection.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    trace_id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
                false
            }
            Err(e) => {
                // The frame arrived intact but its body was malformed;
                // framing is still aligned, so keep the connection.
                obs::counter("serve.bad_frames", 1);
                conn.send(&Response::Error {
                    id: 0,
                    trace_id: 0,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                });
                true
            }
            Ok(Request::Ping { id }) => {
                // Answered inline, bypassing the batch queue.
                conn.send(&Response::Pong { id });
                true
            }
            Ok(Request::Shutdown { id }) => {
                conn.send(&Response::Pong { id });
                self.inner.trigger_shutdown();
                true
            }
            Ok(Request::Predict {
                id,
                trace_id,
                features,
            }) => {
                record_decode(trace_id, decode_begin_ns);
                self.inner.enqueue(conn, id, trace_id, features, false);
                true
            }
            Ok(Request::PredictStamped {
                id,
                trace_id,
                features,
            }) => {
                record_decode(trace_id, decode_begin_ns);
                self.inner.enqueue(conn, id, trace_id, features, true);
                true
            }
            Ok(Request::Feedback {
                id,
                trace_id,
                label,
                features,
            }) => {
                record_decode(trace_id, decode_begin_ns);
                self.inner.enqueue_train(TrainCmd::Feedback {
                    conn: Arc::clone(conn),
                    id,
                    trace_id,
                    label,
                    features,
                });
                true
            }
            Ok(Request::Refresh { id, trace_id }) => {
                record_decode(trace_id, decode_begin_ns);
                self.inner.enqueue_train(TrainCmd::Refresh {
                    conn: Arc::clone(conn),
                    id,
                    trace_id,
                });
                true
            }
        }
    }

    /// EOF or transport error on the read side. `clean` distinguishes a
    /// proper EOF, where a frame cut mid-body still earns a truncation
    /// error frame (matching the blocking loop).
    fn read_finished(&mut self, token: u64, conn: &Arc<Conn>, clean: bool) {
        if clean {
            if let Some(state) = self.conns.get(&token) {
                // EOF with a complete length prefix but a short body is
                // frame damage; EOF inside the prefix is a silent close
                // (the blocking loop's read_exact Io path).
                if state.decoder.mid_frame() && state.decoder.buffered() >= 4 {
                    obs::counter("serve.bad_frames", 1);
                    conn.send(&Response::Error {
                        id: 0,
                        trace_id: 0,
                        code: ErrorCode::BadRequest,
                        message: WireError::Truncated {
                            offset: state.decoder.buffered() - 4,
                            field: "frame body",
                        }
                        .to_string(),
                    });
                }
            }
        }
        self.condemn_read(token, conn);
    }

    /// Stops reading this connection for good; it is reaped as soon as
    /// in-flight responses finish and the outbox drains.
    fn condemn_read(&mut self, token: u64, conn: &Arc<Conn>) {
        conn.mark_read_shut();
        if conn.is_reapable() {
            self.teardown(token);
            return;
        }
        let writable = conn.has_backlog();
        self.want(
            token,
            if writable {
                Interest::WRITABLE
            } else {
                Interest::NONE
            },
            false,
        );
    }

    // -- interest + teardown ------------------------------------------------

    /// Sets a connection's interest; `add` merges with the current set
    /// instead of replacing it.
    fn want(&mut self, token: u64, interest: Interest, add: bool) {
        let Some(state) = self.conns.get_mut(&token) else {
            return;
        };
        let next = if add {
            state.interest.union(interest)
        } else {
            interest
        };
        if next == state.interest {
            return;
        }
        if self.poller.modify(state.conn.fd(), token, next).is_ok() {
            state.interest = next;
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(state) = self.conns.remove(&token) {
            let _ = self.poller.deregister(state.conn.fd());
            state.conn.close();
            self.inner.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    // -- shutdown + drain ---------------------------------------------------

    fn drained(&self) -> bool {
        self.drain_deadline.is_some()
    }

    fn poll_shutdown(&mut self) {
        if self.inner.shutdown.load(Ordering::SeqCst) && !self.shutdown_seen {
            self.shutdown_seen = true;
            if let Some(listener) = self.listener.take() {
                let _ = self.poller.deregister(listener.as_raw_fd());
                // Dropping the listener closes it: new connects are
                // refused from this point on.
            }
            // Park every read; queued requests still get answered and
            // flushed.
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                let Some(state) = self.conns.get(&token) else {
                    continue;
                };
                let conn = Arc::clone(&state.conn);
                self.condemn_read(token, &conn);
            }
        }
        if self.inner.drained.load(Ordering::SeqCst) && self.drain_deadline.is_none() {
            self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
            // Workers are gone: anything without backlogged bytes is
            // finished now.
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                if self
                    .conns
                    .get(&token)
                    .is_some_and(|state| !state.conn.has_backlog())
                {
                    self.teardown(token);
                }
            }
        }
    }

    fn finished(&mut self) -> bool {
        let Some(deadline) = self.drain_deadline else {
            return false;
        };
        if self.conns.is_empty() {
            return true;
        }
        Instant::now() >= deadline
    }
}

/// Best-effort rejection of a not-yet-admitted connection: one
/// `Overloaded` frame, then close. The stream is still in blocking
/// mode; a short write timeout keeps a pathological client from
/// stalling the reactor.
fn reject(mut stream: TcpStream, message: String) {
    obs::counter("serve.responses.error", 1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = wire::write_response(
        &mut stream,
        &Response::Error {
            id: 0,
            trace_id: 0,
            code: ErrorCode::Overloaded,
            message,
        },
    );
}
