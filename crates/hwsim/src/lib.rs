//! # lookhd-hwsim — analytic hardware cost models for the LookHD evaluation
//!
//! The paper evaluates LookHD on a Kintex-7 KC705 FPGA, an ARM Cortex-A53,
//! and (for Table III) a GTX 1080 GPU. None of that hardware is available
//! here, so this crate models the three platforms analytically:
//!
//! * [`opcounts`] — platform-neutral primitive operation counts;
//! * [`workload`] — per-phase op counts of the baseline HDC and LookHD
//!   pipelines, derived operation-for-operation from the `hdc`/`lookhd`
//!   implementations;
//! * [`cpu`] — a scalar in-order A53 model (cycles per op + bandwidth);
//! * [`asic`] — a fixed-function ASIC projection (the §I "including an
//!   ASIC chip" energy-floor reference);
//! * [`fpga`] — the §V pipelined dataflow model: DSP/LUT/BRAM lane pools,
//!   resource-utilization estimates (Fig. 16), BRAM feasibility (Table I),
//!   and activity-scaled power;
//! * [`gpu`] — a throughput + launch-overhead GTX 1080 model;
//! * [`pipeline`] — a discrete stage-by-stage dataflow simulator that
//!   cross-checks the analytic window arithmetic from first principles;
//! * [`report`] — [`report::CostEstimate`] with speedup / energy-efficiency
//!   / EDP comparisons and geometric means.
//!
//! Coefficients live in each model's constructor with their justification;
//! EXPERIMENTS.md reports paper-vs-model for every ratio. The models claim
//! *shape* fidelity (who wins, by what order, where crossovers fall) — not
//! absolute silicon numbers.
//!
//! ## Example
//!
//! ```
//! use lookhd_hwsim::workload::WorkloadShape;
//! use lookhd_hwsim::fpga::FpgaModel;
//!
//! let shape = WorkloadShape {
//!     n_features: 617, q: 4, dim: 2000, n_classes: 26, r: 5,
//!     max_classes_per_vector: 12, train_samples: 1000,
//!     retrain_epochs: 10, avg_updates_per_epoch: 100,
//! };
//! let fpga = FpgaModel::kc705();
//! let baseline = fpga.execute(&shape.baseline_training());
//! let lookhd = fpga.execute(&shape.lookhd_training());
//! assert!(lookhd.speedup_over(&baseline) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asic;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod opcounts;
pub mod pipeline;
pub mod report;
pub mod workload;

pub use asic::AsicModel;
pub use cpu::CpuModel;
pub use fpga::{FpgaDevice, FpgaModel, FpgaPhase, ResourceUsage};
pub use gpu::GpuModel;
pub use opcounts::OpCounts;
pub use report::{geomean, CostEstimate};
pub use workload::WorkloadShape;
