//! NVIDIA GTX 1080 cost model (the paper's Table III comparison point).
//!
//! A throughput model: the GPU sustains an enormous integer-op rate and
//! memory bandwidth but pays a per-phase kernel-launch overhead and a very
//! high power draw. This reproduces Table III's shape: the GPU is a bit
//! faster than the FPGA baseline on raw throughput, LookHD still edges it
//! out on time, and the energy gap is enormous (two orders of magnitude).

use crate::opcounts::OpCounts;
use crate::report::CostEstimate;

/// A throughput-class accelerator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Sustained integer operations per second (all op classes pooled —
    /// the TensorFlow kernels the paper uses are ALU-bound).
    pub ops_per_second: f64,
    /// Sustained memory bandwidth in bytes per second.
    pub bytes_per_second: f64,
    /// Fixed overhead per invoked phase (kernel launches + transfers).
    pub phase_overhead_s: f64,
    /// Board power in watts while busy.
    pub power_w: f64,
}

impl GpuModel {
    /// A GTX 1080: ~8.9 TFLOP/s peak → ~2.5 T sustained int-ops/s under
    /// TensorFlow, 320 GB/s GDDR5X, 180 W board power, ~60 µs of launch
    /// and staging overhead per phase.
    pub fn gtx1080() -> Self {
        Self {
            ops_per_second: 2.5e12,
            bytes_per_second: 3.2e11,
            phase_overhead_s: 60e-6,
            power_w: 180.0,
        }
    }

    /// Executes an operation mix as one fused phase.
    pub fn execute(&self, ops: &OpCounts) -> CostEstimate {
        let compute = ops.total_ops() as f64 / self.ops_per_second;
        let memory = ops.mem_bytes as f64 / self.bytes_per_second;
        let seconds = compute.max(memory) + self.phase_overhead_s;
        CostEstimate::new(seconds, seconds * self.power_w)
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::gtx1080()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;
    use crate::fpga::FpgaModel;
    use crate::workload::WorkloadShape;

    fn speech_shape() -> WorkloadShape {
        WorkloadShape {
            n_features: 617,
            q: 4,
            dim: 2000,
            n_classes: 26,
            r: 5,
            max_classes_per_vector: 12,
            train_samples: 1560,
            retrain_epochs: 10,
            avg_updates_per_epoch: 150,
        }
    }

    #[test]
    fn gpu_is_fast_but_power_hungry() {
        let shape = speech_shape();
        let gpu = GpuModel::gtx1080().execute(&shape.baseline_training());
        let cpu = CpuModel::cortex_a53().execute(&shape.baseline_training());
        assert!(gpu.speedup_over(&cpu) > 100.0, "GPU should crush the A53");
        // …but per-joule it is far worse than the FPGA.
        let fpga = FpgaModel::kc705().execute(&shape.baseline_training());
        assert!(
            fpga.energy_efficiency_over(&gpu) > 5.0,
            "FPGA should be much more energy-efficient than GPU"
        );
    }

    #[test]
    fn launch_overhead_dominates_tiny_phases() {
        let gpu = GpuModel::gtx1080();
        let tiny = OpCounts {
            adds: 100,
            ..OpCounts::zero()
        };
        let t = gpu.execute(&tiny).seconds;
        assert!(
            (t - 60e-6).abs() / 60e-6 < 0.01,
            "tiny phase should be all overhead: {t}"
        );
    }

    #[test]
    fn large_phases_amortize_overhead() {
        let gpu = GpuModel::gtx1080();
        let big = OpCounts {
            adds: 2_500_000_000_000,
            ..OpCounts::zero()
        };
        let t = gpu.execute(&big).seconds;
        assert!((t - 1.0).abs() < 0.01, "1s of compute expected: {t}");
    }

    #[test]
    fn memory_bound_phases_limited_by_bandwidth() {
        let gpu = GpuModel::gtx1080();
        let streaming = OpCounts {
            adds: 10,
            mem_bytes: 320_000_000_000,
            ..OpCounts::zero()
        };
        assert!((gpu.execute(&streaming).seconds - 1.0).abs() < 0.01);
    }
}
