//! Kintex-7 KC705 FPGA cost model (§V, §VI-A).
//!
//! The paper's FPGA designs are fully pipelined dataflow engines whose
//! throughput is set by how many parallel lanes each resource class can
//! host: multiplications map to DSP48 slices, add/negate/compare trees to
//! LUT/FF fabric, and pre-stored tables to BRAM. We model each phase as
//! running its operation mix on those lane pools at a 200 MHz clock (the
//! paper's 5 ns), and charge a power that scales with how busy each
//! resource class actually is — so a phase that only increments counters
//! (LookHD training) burns far less than one saturating the DSP array
//! (baseline associative search), reproducing the paper's
//! energy-efficiency-vs-speedup gap.

use crate::opcounts::OpCounts;
use crate::report::CostEstimate;
use crate::workload::WorkloadShape;

/// Static resource inventory of an FPGA device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaDevice {
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP48 slices.
    pub dsps: u64,
    /// Total block-RAM bits.
    pub bram_bits: u64,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
}

impl FpgaDevice {
    /// The Kintex-7 KC705 evaluation kit (XC7K325T): 203,800 LUTs,
    /// 407,600 FFs, 840 DSPs, 445 × 36 Kb BRAM, run at the paper's 5 ns
    /// clock.
    pub fn kc705() -> Self {
        Self {
            luts: 203_800,
            ffs: 407_600,
            dsps: 840,
            bram_bits: 445 * 36 * 1024,
            clock_hz: 200e6,
        }
    }
}

/// Resource usage of one synthesized design (the Fig. 16 quantities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// LUTs used.
    pub luts: u64,
    /// FFs used.
    pub ffs: u64,
    /// DSPs used.
    pub dsps: u64,
    /// BRAM bits used.
    pub bram_bits: u64,
}

impl ResourceUsage {
    /// Utilization fractions against a device, in `[0, 1+]` order
    /// `(lut, ff, dsp, bram)`. Values above 1 mean the design does not fit.
    pub fn utilization(&self, device: &FpgaDevice) -> (f64, f64, f64, f64) {
        (
            self.luts as f64 / device.luts as f64,
            self.ffs as f64 / device.ffs as f64,
            self.dsps as f64 / device.dsps as f64,
            self.bram_bits as f64 / device.bram_bits as f64,
        )
    }

    /// True when every resource fits the device.
    pub fn fits(&self, device: &FpgaDevice) -> bool {
        let (l, f, d, b) = self.utilization(device);
        l <= 1.0 && f <= 1.0 && d <= 1.0 && b <= 1.0
    }
}

/// Which synthesized design a phase runs on. The FPGA's dynamic power is
/// set by the instantiated design's toggle activity, not just the op mix:
/// the baseline's full-width encoding fabric keeps most of the LUT array
/// switching, while LookHD's designs are dominated by quiet BRAM reads and
/// small adder trees. The per-design power constants below are calibrated
/// to the paper's reported energy/speedup gaps (§VI-C: 97.4/28.3 ⇒ ~3.4×
/// training power gap; §VI-D: 4.1/2.2 ⇒ ~1.9× inference power gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpgaPhase {
    /// Baseline training datapath (full-width permutation encoder, §II).
    BaselineTraining,
    /// LookHD training datapath (quantizers + counters + BRAM tables,
    /// §V-A, Fig. 10).
    LookHdTraining,
    /// Baseline inference (encoder + uncompressed associative search).
    BaselineInference,
    /// LookHD inference pipeline (§V-B, Fig. 11).
    LookHdInference,
    /// Baseline retraining (encoder + search + model update).
    BaselineRetraining,
    /// LookHD retraining (compressed search + staged update, §V-C).
    LookHdRetraining,
}

impl FpgaPhase {
    /// Dynamic design power in watts while the phase is running.
    pub fn dynamic_power_w(&self) -> f64 {
        match self {
            FpgaPhase::BaselineTraining => 3.9,
            FpgaPhase::LookHdTraining => 1.15,
            FpgaPhase::BaselineInference => 3.2,
            FpgaPhase::LookHdInference => 1.7,
            FpgaPhase::BaselineRetraining => 3.4,
            FpgaPhase::LookHdRetraining => 1.8,
        }
    }
}

/// The FPGA performance/power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaModel {
    /// The device being targeted.
    pub device: FpgaDevice,
    /// LUTs consumed per add/negate/compare lane (adder-tree slice).
    pub luts_per_add_lane: u64,
    /// Static (always-on) power in watts.
    pub static_power_w: f64,
    /// Dynamic power in watts at 100% LUT-fabric activity.
    pub lut_power_w: f64,
    /// Dynamic power in watts at 100% DSP-array activity.
    pub dsp_power_w: f64,
    /// Dynamic power in watts at 100% BRAM-bandwidth activity.
    pub bram_power_w: f64,
}

impl FpgaModel {
    /// The KC705 with calibrated lane/power coefficients. ~40 LUTs per
    /// 16-bit add lane gives ≈5,000 parallel adders, which reproduces the
    /// paper's ≈830× baseline-training speedup over the A53 (§VI-C).
    pub fn kc705() -> Self {
        Self {
            device: FpgaDevice::kc705(),
            luts_per_add_lane: 40,
            static_power_w: 0.7,
            lut_power_w: 2.6,
            dsp_power_w: 1.9,
            bram_power_w: 0.8,
        }
    }

    /// Number of parallel LUT-fabric lanes (adds/negations/compares).
    pub fn add_lanes(&self) -> u64 {
        (self.device.luts / self.luts_per_add_lane).max(1)
    }

    /// BRAM streaming bandwidth in bytes per cycle (each 36 Kb block ports
    /// 8 bytes/cycle; table reads are spread across blocks).
    pub fn bram_bytes_per_cycle(&self) -> f64 {
        (self.device.bram_bits / (36 * 1024)) as f64 * 8.0
    }

    /// Cycles and per-resource busy fractions for an operation mix.
    fn cycles_and_activity(&self, ops: &OpCounts) -> (f64, f64, f64, f64) {
        let dsp_cycles = ops.mults as f64 / self.device.dsps as f64;
        let lut_ops = ops.adds + ops.negations + ops.compares;
        let lut_cycles = lut_ops as f64 / self.add_lanes() as f64;
        let bram_cycles = ops.mem_bytes as f64 / self.bram_bytes_per_cycle();
        // The pipelines overlap the three resource classes; the slowest one
        // sets the throughput, plus a fixed fill cost.
        let cycles = dsp_cycles.max(lut_cycles).max(bram_cycles) + 32.0;
        (
            cycles,
            dsp_cycles / cycles,
            lut_cycles / cycles,
            bram_cycles / cycles,
        )
    }

    /// Executes an operation mix on a specific synthesized design, using
    /// that design's calibrated dynamic power (the paper-style energy
    /// accounting; see [`FpgaPhase`]).
    pub fn execute_as(&self, ops: &OpCounts, phase: FpgaPhase) -> CostEstimate {
        let (cycles, _, _, _) = self.cycles_and_activity(ops);
        let seconds = cycles / self.device.clock_hz;
        let power = self.static_power_w + phase.dynamic_power_w();
        CostEstimate::new(seconds, seconds * power)
    }

    /// Executes an operation mix on the modelled pipelines with
    /// activity-proportional power (generic path when no synthesized-design
    /// calibration applies).
    pub fn execute(&self, ops: &OpCounts) -> CostEstimate {
        let (cycles, dsp_act, lut_act, bram_act) = self.cycles_and_activity(ops);
        let seconds = cycles / self.device.clock_hz;
        let power = self.static_power_w
            + self.dsp_power_w * dsp_act
            + self.lut_power_w * lut_act
            + self.bram_power_w * bram_act;
        CostEstimate::new(seconds, seconds * power)
    }

    /// Narrow-multiplier lanes: finalize products are a counter times a
    /// `⌈log2(2r+1)⌉`-bit table element, small enough for LUT fabric
    /// (§V-A: "this multiplication can happen using LUTs and FFs"). A
    /// narrow multiply-add costs ~12 LUTs.
    pub fn narrow_mult_lanes(&self) -> u64 {
        (self.device.luts / 12).max(1)
    }

    /// Structural cycle count of the §II baseline initial-training
    /// pipeline: every sample streams `n` rotated `D`-bit level
    /// hypervectors through the LUT adder fabric.
    pub fn baseline_initial_training_cycles(&self, shape: &WorkloadShape) -> f64 {
        let per_sample = (shape.n_features * shape.dim) as f64 / self.add_lanes() as f64;
        shape.train_samples as f64 * per_sample + 64.0
    }

    /// Structural cycle count of the §V-A LookHD training pipeline
    /// (Fig. 10): the counter pass retires one sample per cycle (parallel
    /// quantizers + per-chunk counter files), the counter arrays are read
    /// out in `q^r` cycles (all chunks/classes in parallel), non-zero
    /// counters multiply into pre-stored rows on narrow LUT multipliers,
    /// and the chunk aggregation runs on the adder fabric.
    pub fn lookhd_initial_training_cycles(&self, shape: &WorkloadShape) -> f64 {
        let observe = shape.train_samples as f64;
        let readout = shape.table_rows() as f64;
        let k = shape.n_classes as u64;
        let m = shape.n_chunks() as u64;
        let d = shape.dim as u64;
        let finalize = (k * m * shape.touched_rows() * d) as f64 / self.narrow_mult_lanes() as f64;
        let aggregate = (k * m * d) as f64 / self.add_lanes() as f64;
        observe + readout + finalize + aggregate + 64.0
    }

    /// Paper-style cost of one initial-training run on the named design
    /// (structural cycles + the design's calibrated power).
    pub fn initial_training_cost(&self, shape: &WorkloadShape, phase: FpgaPhase) -> CostEstimate {
        let cycles = match phase {
            FpgaPhase::LookHdTraining => self.lookhd_initial_training_cycles(shape),
            _ => self.baseline_initial_training_cycles(shape),
        };
        let seconds = cycles / self.device.clock_hz;
        let power = self.static_power_w + phase.dynamic_power_w();
        CostEstimate::new(seconds, seconds * power)
    }

    /// The paper's `d'` — how many dimensions the associative search can
    /// process per cycle, limited by the DSP array divided across `k`
    /// parallel class accumulations, floored to a power of two (§V-B's
    /// examples: `k = 12` → `d' = 64`, `k = 2` → `d' = 256`).
    pub fn search_window(&self, n_classes: usize) -> u64 {
        let per_class = (self.device.dsps / n_classes.max(1) as u64).max(1);
        // Largest power of two ≤ per_class.
        1u64 << (63 - per_class.leading_zeros() as u64)
    }

    /// Fig. 16-style resource estimate for the LookHD *training* design:
    /// quantization comparators, per-chunk counter register files, BRAM
    /// chunk tables, and the weighted-accumulation adder tree.
    pub fn lookhd_training_usage(&self, shape: &WorkloadShape) -> ResourceUsage {
        let n = shape.n_features as u64;
        let q = shape.q as u64;
        let m = shape.n_chunks() as u64;
        let rows = shape.table_rows();
        let d = shape.dim as u64;
        // Quantizer: q subtract/compare units per feature, ~12 LUTs each.
        let quant_luts = n * q * 12;
        // Counters: small banks live in flip-flops (fast RMW); larger ones
        // move to BRAM with ~30 LUTs of read-modify-write port logic per
        // chunk (the m·q^r register file would otherwise dwarf the fabric).
        let counter_bits = m * rows * 16;
        let counters_in_ff = counter_bits <= self.device.ffs / 4;
        let (counter_ffs, counter_luts, counter_bram) = if counters_in_ff {
            (counter_bits, m * 30, 0)
        } else {
            (0, m * 30, counter_bits)
        };
        // Weighted accumulation adder tree over the parallel dimension slice.
        let acc_lanes = self.add_lanes().min(d);
        let acc_luts = acc_lanes * self.luts_per_add_lane;
        // Chunk tables in BRAM (full-r table + the partial-chunk table).
        let bram_bits = shape.table_bits() + counter_bram;
        ResourceUsage {
            luts: quant_luts + counter_luts + acc_luts,
            ffs: counter_ffs + acc_luts, // pipeline registers track the tree
            dsps: self.device.dsps / 4,  // counter-row multipliers
            bram_bits,
        }
    }

    /// Fig. 16-style resource estimate for the LookHD *inference* design:
    /// the encoding block (LUT/FF) pipelined with the DSP-based
    /// associative search (§V-B).
    pub fn lookhd_inference_usage(&self, shape: &WorkloadShape) -> ResourceUsage {
        let n = shape.n_features as u64;
        let q = shape.q as u64;
        let d = shape.dim as u64;
        let quant_luts = n * q * 12;
        let window = self.search_window(shape.n_classes);
        // Negation + accumulation for k classes over the d' window.
        let search_luts = shape.n_classes as u64 * window * 6;
        let bram_bits = shape.table_bits() + shape.n_vectors() as u64 * d * 32; // + compressed model
        ResourceUsage {
            luts: quant_luts + search_luts,
            ffs: quant_luts + 2 * search_luts,
            dsps: (window * shape.n_vectors() as u64).min(self.device.dsps),
            bram_bits,
        }
    }

    /// Whether the materialized chunk tables fit this device's BRAM — the
    /// §III feasibility constraint that motivates small `q` and `r`.
    pub fn tables_fit(&self, shape: &WorkloadShape) -> bool {
        shape.table_bits() <= self.device.bram_bits
    }
}

impl Default for FpgaModel {
    fn default() -> Self {
        Self::kc705()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speech_shape() -> WorkloadShape {
        WorkloadShape {
            n_features: 617,
            q: 4,
            dim: 2000,
            n_classes: 26,
            r: 5,
            max_classes_per_vector: 12,
            train_samples: 1560,
            retrain_epochs: 10,
            avg_updates_per_epoch: 150,
        }
    }

    #[test]
    fn kc705_inventory_matches_datasheet() {
        let d = FpgaDevice::kc705();
        assert_eq!(d.dsps, 840);
        assert_eq!(d.luts, 203_800);
        assert_eq!(d.clock_hz, 200e6);
    }

    #[test]
    fn search_window_matches_paper_examples() {
        let m = FpgaModel::kc705();
        // §V-B's examples: k=12 → 64, k=2 → 256 (the paper labels the
        // first "ACTIVITY" but computes it at 12 classes).
        assert_eq!(m.search_window(12), 64);
        assert_eq!(m.search_window(2), 256);
        assert_eq!(m.search_window(6), 128);
    }

    #[test]
    fn fpga_crushes_cpu_on_parallel_adds() {
        // The §VI-C claim: baseline training ~830× faster on FPGA than A53.
        let shape = speech_shape();
        let fpga = FpgaModel::kc705().execute(&shape.baseline_training());
        let cpu = crate::cpu::CpuModel::cortex_a53().execute(&shape.baseline_training());
        let speedup = fpga.speedup_over(&cpu);
        assert!(
            (100.0..5000.0).contains(&speedup),
            "FPGA/CPU baseline-training speedup out of band: {speedup}"
        );
    }

    #[test]
    fn lookhd_training_beats_baseline_training_on_fpga() {
        let shape = speech_shape();
        let model = FpgaModel::kc705();
        let base = model.execute_as(&shape.baseline_training(), FpgaPhase::BaselineTraining);
        let look = model.execute_as(&shape.lookhd_training(), FpgaPhase::LookHdTraining);
        let speedup = look.speedup_over(&base);
        assert!(speedup > 2.0, "LookHD should win on FPGA: {speedup}");
        let eff = look.energy_efficiency_over(&base);
        assert!(
            eff > speedup,
            "energy gain should exceed speedup: {eff} vs {speedup}"
        );
    }

    #[test]
    fn lighter_phases_draw_less_power() {
        let shape = speech_shape();
        let model = FpgaModel::kc705();
        let search = model.execute(&shape.baseline_search());
        let observe = model.execute(&shape.lookhd_observe());
        let p_search = search.joules / search.seconds;
        let p_observe = observe.joules / observe.seconds;
        assert!(
            p_observe < p_search,
            "counter pass should be low power: {p_observe} vs {p_search}"
        );
    }

    #[test]
    fn q4_tables_fit_q16_do_not() {
        let mut shape = speech_shape();
        let model = FpgaModel::kc705();
        assert!(model.tables_fit(&shape), "q=4, r=5 must fit KC705 BRAM");
        shape.q = 16;
        assert!(!model.tables_fit(&shape), "q=16, r=5 must not fit");
    }

    #[test]
    fn utilization_reports_fit() {
        let shape = speech_shape();
        let model = FpgaModel::kc705();
        let usage = model.lookhd_inference_usage(&shape);
        let (l, f, d, b) = usage.utilization(&model.device);
        assert!(l > 0.0 && f > 0.0 && d > 0.0 && b > 0.0);
        assert!(
            usage.fits(&model.device),
            "SPEECH inference should fit: {l} {f} {d} {b}"
        );
    }

    #[test]
    fn training_usage_grows_with_q() {
        let model = FpgaModel::kc705();
        let mut shape = speech_shape();
        shape.q = 2;
        let small = model.lookhd_training_usage(&shape);
        shape.q = 4;
        let big = model.lookhd_training_usage(&shape);
        assert!(big.bram_bits > small.bram_bits);
        assert!(big.luts > small.luts);
    }
}
