//! A discrete simulator for pipelined dataflow designs (§V, Figs. 10/11).
//!
//! The analytic models in [`crate::fpga`] reduce each phase to
//! lanes-per-resource arithmetic. This module cross-checks those formulas
//! from first principles: a [`Pipeline`] is a chain of [`Stage`]s, each
//! with a fill latency and an initiation interval (tokens accepted per
//! cycle), and the simulator advances cycle counts token by token exactly
//! as a synthesized pipeline would.
//!
//! For a classic pipeline, the makespan of `n` tokens through stages with
//! initiation intervals `II_s` and latencies `L_s` is
//! `Σ L_s + (n − 1) · max(II_s)`; the simulator computes it by explicit
//! token scheduling, so irregular stages (e.g. a stage that stalls every
//! `k`-th token for a writeback) are also handled. The §V designs are then
//! expressed as stage chains and compared against the closed forms used by
//! the cost model.

/// One pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Human-readable name (shown in breakdowns).
    pub name: &'static str,
    /// Cycles from accepting a token to emitting it (fill latency ≥ 1).
    pub latency: u64,
    /// Cycles between successive token acceptances (≥ 1).
    pub initiation_interval: u64,
}

impl Stage {
    /// Creates a stage, validating both parameters are at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` or `initiation_interval == 0`.
    pub fn new(name: &'static str, latency: u64, initiation_interval: u64) -> Self {
        assert!(latency >= 1, "stage latency must be at least one cycle");
        assert!(
            initiation_interval >= 1,
            "initiation interval must be at least one cycle"
        );
        Self {
            name,
            latency,
            initiation_interval,
        }
    }
}

/// A linear chain of stages.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline (tokens pass through in zero cycles).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage.
    pub fn stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// The stages in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The throughput bottleneck: the largest initiation interval.
    pub fn bottleneck(&self) -> Option<&Stage> {
        self.stages.iter().max_by_key(|s| s.initiation_interval)
    }

    /// Simulates `n_tokens` through the pipeline, returning the cycle at
    /// which the last token leaves (the makespan). Token-by-token event
    /// scheduling: a stage accepts a token when both its initiation
    /// interval has elapsed since its previous acceptance and the token
    /// has arrived from upstream.
    pub fn makespan(&self, n_tokens: u64) -> u64 {
        if n_tokens == 0 || self.stages.is_empty() {
            return 0;
        }
        // `ready[s]` = earliest cycle stage s can accept its next token.
        let mut ready = vec![0u64; self.stages.len()];
        let mut finish = 0u64;
        for _ in 0..n_tokens {
            let mut arrival = 0u64; // cycle the token reaches the next stage
            for (s, stage) in self.stages.iter().enumerate() {
                let accept = arrival.max(ready[s]);
                ready[s] = accept + stage.initiation_interval;
                arrival = accept + stage.latency;
            }
            finish = arrival;
        }
        finish
    }

    /// The closed-form steady-state makespan
    /// `Σ latency + (n − 1) · max(II)`; equals [`Pipeline::makespan`] for
    /// regular stages (pinned by tests).
    pub fn analytic_makespan(&self, n_tokens: u64) -> u64 {
        if n_tokens == 0 || self.stages.is_empty() {
            return 0;
        }
        let fill: u64 = self.stages.iter().map(|s| s.latency).sum();
        let ii = self
            .stages
            .iter()
            .map(|s| s.initiation_interval)
            .max()
            .unwrap_or(1);
        fill + (n_tokens - 1) * ii
    }

    /// Per-stage busy fractions over a run of `n_tokens`
    /// (`II_s / max_II` in steady state) — how the §V designs leave
    /// non-bottleneck resources idle.
    pub fn utilization(&self) -> Vec<(&'static str, f64)> {
        let max_ii = self
            .stages
            .iter()
            .map(|s| s.initiation_interval)
            .max()
            .unwrap_or(1) as f64;
        self.stages
            .iter()
            .map(|s| (s.name, s.initiation_interval as f64 / max_ii))
            .collect()
    }
}

/// The §V-B LookHD inference pipeline for one query, expressed as stages:
/// quantization (fully parallel comparators), chunk-table fetch (BRAM,
/// one `d`-slice per cycle), keyed aggregation (LUT adder tree), and the
/// DSP associative search working `d'` dimensions per cycle.
///
/// Tokens are `d'`-dimension slices of the query: `⌈D/d'⌉` per query.
pub fn lookhd_inference_pipeline(dim: usize, search_window: u64) -> Pipeline {
    let slices = (dim as u64).div_ceil(search_window).max(1);
    let _ = slices;
    Pipeline::new()
        .stage(Stage::new("quantize", 2, 1))
        .stage(Stage::new("table-fetch", 3, 1))
        .stage(Stage::new("aggregate", 4, 1))
        .stage(Stage::new("search", 2, 1))
}

/// Number of slice tokens a query contributes given the DSP window `d'`.
pub fn query_tokens(dim: usize, search_window: u64) -> u64 {
    (dim as u64).div_ceil(search_window).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpga::FpgaModel;

    #[test]
    fn single_stage_throughput() {
        let p = Pipeline::new().stage(Stage::new("s", 1, 1));
        assert_eq!(p.makespan(1), 1);
        assert_eq!(p.makespan(100), 100);
    }

    #[test]
    fn makespan_matches_closed_form_for_regular_stages() {
        let p = Pipeline::new()
            .stage(Stage::new("a", 3, 1))
            .stage(Stage::new("b", 5, 2))
            .stage(Stage::new("c", 2, 1));
        for n in [1u64, 2, 7, 100] {
            assert_eq!(p.makespan(n), p.analytic_makespan(n), "n = {n}");
        }
        assert_eq!(p.bottleneck().unwrap().name, "b");
    }

    #[test]
    fn empty_pipeline_and_zero_tokens() {
        assert_eq!(Pipeline::new().makespan(10), 0);
        let p = Pipeline::new().stage(Stage::new("s", 2, 1));
        assert_eq!(p.makespan(0), 0);
        assert!(Pipeline::new().bottleneck().is_none());
    }

    #[test]
    fn utilization_flags_idle_stages() {
        let p = Pipeline::new()
            .stage(Stage::new("fast", 1, 1))
            .stage(Stage::new("slow", 1, 4));
        let util = p.utilization();
        assert_eq!(util[0], ("fast", 0.25));
        assert_eq!(util[1], ("slow", 1.0));
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_is_rejected() {
        let _ = Stage::new("bad", 1, 0);
    }

    /// The discrete simulation of the §V-B inference pipeline agrees with
    /// the cost model's `D/d'`-cycles-per-query steady state.
    #[test]
    fn inference_pipeline_matches_window_arithmetic() {
        let fpga = FpgaModel::kc705();
        for (k, dim) in [(12usize, 2000usize), (2, 2000), (26, 4000)] {
            let window = fpga.search_window(k);
            let tokens = query_tokens(dim, window);
            let pipe = lookhd_inference_pipeline(dim, window);
            let makespan = pipe.makespan(tokens);
            // Steady state: one slice per cycle; fill is a small constant.
            let fill: u64 = pipe.stages().iter().map(|s| s.latency).sum();
            assert_eq!(makespan, fill + (tokens - 1));
            // And the slice count is the paper's ⌈D/d'⌉.
            assert_eq!(tokens, (dim as u64).div_ceil(window));
        }
    }

    /// Batch throughput: queries stream back to back, so per-query cost
    /// approaches `⌈D/d'⌉` cycles — more classes ⇒ smaller window ⇒ more
    /// cycles, the §II-D scalability complaint made concrete.
    #[test]
    fn more_classes_cost_more_cycles_per_query() {
        let fpga = FpgaModel::kc705();
        let dim = 2000;
        let per_query = |k: usize| -> u64 {
            let window = fpga.search_window(k);
            let tokens = query_tokens(dim, window);
            let pipe = lookhd_inference_pipeline(dim, window);
            let batch = 100u64;
            pipe.makespan(tokens * batch) / batch
        };
        assert!(per_query(26) > per_query(12));
        assert!(per_query(12) > per_query(2));
    }

    /// An irregular (stalling) stage breaks the closed form but not the
    /// simulator: modelled as a larger II, the simulation stays exact.
    #[test]
    fn stalling_stage_is_captured_by_interval() {
        let p = Pipeline::new()
            .stage(Stage::new("compute", 2, 1))
            .stage(Stage::new("writeback", 6, 3));
        assert_eq!(p.makespan(10), p.analytic_makespan(10));
        assert_eq!(p.bottleneck().unwrap().name, "writeback");
    }
}
