//! ARM Cortex-A53 cost model (the paper's low-power CPU platform).
//!
//! A simple scalar in-order model: each primitive op class has a
//! cycles-per-op coefficient, memory traffic is bandwidth-limited, and the
//! whole core burns a constant active power. Coefficients are calibrated to
//! an A53 at 1.2 GHz running optimized C++ (§VI-A: ARM Cortex A53, power
//! measured with a Hioki 3334): int multiply ≈ 3 cycles, simple ALU ops
//! retire ~1/cycle, random table reads cost a cache-ish latency, and
//! streaming bandwidth is a few bytes per cycle.

use crate::opcounts::OpCounts;
use crate::report::CostEstimate;

/// Cycle/energy coefficients of a low-power in-order CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Active power in watts.
    pub active_power_w: f64,
    /// Cycles per integer multiply.
    pub cycles_per_mult: f64,
    /// Cycles per add/sub.
    pub cycles_per_add: f64,
    /// Cycles per compare.
    pub cycles_per_compare: f64,
    /// Cycles per sign negation (conditional negate).
    pub cycles_per_negation: f64,
    /// Cycles per random-access row lookup (address computation + first
    /// access latency; the row body is charged through `mem_bytes`).
    pub cycles_per_lookup: f64,
    /// Streaming memory throughput in bytes per cycle.
    pub bytes_per_cycle: f64,
}

impl CpuModel {
    /// An ARM Cortex-A53 @ 1.2 GHz, ~1.5 W active.
    pub fn cortex_a53() -> Self {
        Self {
            clock_hz: 1.2e9,
            active_power_w: 1.5,
            cycles_per_mult: 3.0,
            cycles_per_add: 1.0,
            cycles_per_compare: 1.0,
            cycles_per_negation: 1.0,
            cycles_per_lookup: 15.0,
            bytes_per_cycle: 4.0,
        }
    }

    /// Total cycles for an operation mix: compute cycles plus
    /// bandwidth-limited memory cycles (they overlap imperfectly on an
    /// in-order core, so we charge the larger of the two plus half the
    /// smaller).
    pub fn cycles(&self, ops: &OpCounts) -> f64 {
        let compute = ops.mults as f64 * self.cycles_per_mult
            + ops.adds as f64 * self.cycles_per_add
            + ops.compares as f64 * self.cycles_per_compare
            + ops.negations as f64 * self.cycles_per_negation
            + ops.lookups as f64 * self.cycles_per_lookup;
        let memory = ops.mem_bytes as f64 / self.bytes_per_cycle;
        compute.max(memory) + 0.5 * compute.min(memory)
    }

    /// Executes an operation mix, returning time and energy.
    pub fn execute(&self, ops: &OpCounts) -> CostEstimate {
        let seconds = self.cycles(ops) / self.clock_hz;
        CostEstimate::new(seconds, seconds * self.active_power_w)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::cortex_a53()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adds_only(n: u64) -> OpCounts {
        OpCounts {
            adds: n,
            ..OpCounts::zero()
        }
    }

    #[test]
    fn time_scales_linearly_with_work() {
        let cpu = CpuModel::cortex_a53();
        let t1 = cpu.execute(&adds_only(1_000_000)).seconds;
        let t2 = cpu.execute(&adds_only(2_000_000)).seconds;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let cpu = CpuModel::cortex_a53();
        let c = cpu.execute(&adds_only(1_200_000));
        assert!((c.joules - c.seconds * 1.5).abs() < 1e-15);
        // 1.2M adds at 1 cycle each on 1.2 GHz ≈ 1 ms.
        assert!((c.seconds - 1e-3).abs() < 1e-5);
    }

    #[test]
    fn mults_cost_more_than_adds() {
        let cpu = CpuModel::cortex_a53();
        let mults = OpCounts {
            mults: 1000,
            ..OpCounts::zero()
        };
        assert!(cpu.cycles(&mults) > cpu.cycles(&adds_only(1000)));
    }

    #[test]
    fn memory_bound_work_is_bandwidth_limited() {
        let cpu = CpuModel::cortex_a53();
        let streaming = OpCounts {
            adds: 10,
            mem_bytes: 40_000_000,
            ..OpCounts::zero()
        };
        // 40 MB at 4 B/cycle = 10M cycles dominates the 10 adds.
        assert!(cpu.cycles(&streaming) >= 1e7);
    }

    #[test]
    fn lookup_latency_is_charged() {
        let cpu = CpuModel::cortex_a53();
        let lookups = OpCounts {
            lookups: 100,
            ..OpCounts::zero()
        };
        assert_eq!(cpu.cycles(&lookups), 1500.0);
    }
}
