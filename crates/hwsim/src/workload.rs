//! Workload shapes and per-phase operation counts for the baseline HDC and
//! LookHD pipelines (the §II / §III / §IV algorithms as cost descriptors).
//!
//! The counts mirror the Rust implementations in the `hdc` and `lookhd`
//! crates operation-for-operation; unit tests in those crates pin the
//! algorithms, and tests here pin the count formulas against small
//! hand-computed cases.

use crate::opcounts::OpCounts;

/// Static shape of one classification workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadShape {
    /// Number of input features `n`.
    pub n_features: usize,
    /// Quantization levels `q`.
    pub q: usize,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Number of classes `k`.
    pub n_classes: usize,
    /// LookHD chunk size `r` (ignored by baseline phases).
    pub r: usize,
    /// Classes folded per compressed vector (ignored by baseline phases;
    /// `k` ⇒ fully compressed single vector).
    pub max_classes_per_vector: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Retraining epochs.
    pub retrain_epochs: usize,
    /// Average model updates (mispredictions) per retraining epoch.
    pub avg_updates_per_epoch: usize,
}

impl WorkloadShape {
    /// Number of LookHD chunks `m = ⌈n/r⌉`.
    pub fn n_chunks(&self) -> usize {
        self.n_features.div_ceil(self.r)
    }

    /// Number of compressed vectors `⌈k / max_per_vec⌉`.
    pub fn n_vectors(&self) -> usize {
        self.n_classes.div_ceil(self.max_classes_per_vector)
    }

    /// Rows of one full chunk table, `q^r` (saturating).
    pub fn table_rows(&self) -> u64 {
        (self.q as u64).saturating_pow(self.r as u32)
    }

    /// Bits per pre-stored chunk-hypervector element: values span
    /// `[-r, r]`, so `⌈log2(2r+1)⌉` bits.
    pub fn lut_element_bits(&self) -> u32 {
        (2 * self.r as u64 + 1).next_power_of_two().trailing_zeros()
    }

    /// Bytes of one pre-stored chunk hypervector row.
    fn lut_row_bytes(&self) -> u64 {
        (self.dim as u64 * self.lut_element_bits() as u64).div_ceil(8)
    }

    /// Total bits of the materialized chunk tables: the shared full-`r`
    /// table plus (when `r ∤ n`) the smaller partial-final-chunk table.
    pub fn table_bits(&self) -> u64 {
        let d = self.dim as u64;
        let bits = self.lut_element_bits() as u64;
        let mut total = self.table_rows().saturating_mul(d * bits);
        let rem = self.n_features % self.r;
        if rem != 0 {
            total = total.saturating_add((self.q as u64).saturating_pow(rem as u32) * d * bits);
        }
        total
    }

    // ------------------------------------------------------------------
    // Baseline HDC phases (§II)
    // ------------------------------------------------------------------

    /// Baseline per-sample encoding (Eq. 1): quantize every feature
    /// (subtract + compare against `q` levels) and bundle `n` rotated
    /// `D`-bit level hypervectors.
    pub fn baseline_encode(&self) -> OpCounts {
        let (n, q, d) = (self.n_features as u64, self.q as u64, self.dim as u64);
        OpCounts {
            mults: 0,
            adds: n * q + n * d,
            compares: n * q,
            negations: 0,
            lookups: n,
            mem_bytes: n * d / 8, // one D-bit level hypervector per feature
        }
    }

    /// Baseline associative search for one query against `k` classes
    /// (dot products, classes pre-normalized, §IV-A).
    pub fn baseline_search(&self) -> OpCounts {
        let (k, d) = (self.n_classes as u64, self.dim as u64);
        OpCounts {
            mults: k * d,
            adds: k * d,
            compares: k,
            negations: 0,
            lookups: 0,
            mem_bytes: k * d * 4, // stream the full int32 model
        }
    }

    /// Baseline initial training: encode every sample and bundle it into
    /// its class (`+D` adds each).
    pub fn baseline_initial_training(&self) -> OpCounts {
        let per_sample = self.baseline_encode()
            + OpCounts {
                adds: self.dim as u64,
                mem_bytes: self.dim as u64 * 4,
                ..OpCounts::zero()
            };
        per_sample.scaled(self.train_samples as u64)
    }

    /// One baseline retraining epoch: re-encode + search every sample,
    /// two `D`-wide updates per misprediction.
    pub fn baseline_retrain_epoch(&self) -> OpCounts {
        let per_sample = self.baseline_encode() + self.baseline_search();
        let updates = OpCounts {
            adds: 2 * self.dim as u64,
            mem_bytes: 2 * self.dim as u64 * 4,
            ..OpCounts::zero()
        }
        .scaled(self.avg_updates_per_epoch as u64);
        per_sample.scaled(self.train_samples as u64) + updates
    }

    /// Full baseline training: initial pass plus all retraining epochs.
    pub fn baseline_training(&self) -> OpCounts {
        self.baseline_initial_training()
            + self
                .baseline_retrain_epoch()
                .scaled(self.retrain_epochs as u64)
    }

    /// Full baseline inference for one query: encode + search.
    pub fn baseline_inference(&self) -> OpCounts {
        self.baseline_encode() + self.baseline_search()
    }

    // ------------------------------------------------------------------
    // LookHD phases (§III, §IV)
    // ------------------------------------------------------------------

    /// LookHD per-sample encoding: quantize, fetch `m` pre-stored rows,
    /// aggregate with position-key negations (Eq. 3).
    pub fn lookhd_encode(&self) -> OpCounts {
        let (n, q, d) = (self.n_features as u64, self.q as u64, self.dim as u64);
        let m = self.n_chunks() as u64;
        OpCounts {
            mults: 0,
            adds: n * q + m * d,
            compares: n * q,
            negations: m * d,
            lookups: m,
            mem_bytes: m * self.lut_row_bytes(),
        }
    }

    /// LookHD compressed associative search for one query: `D`
    /// multiplications per combined vector, sign-flip accumulation per
    /// class (§IV-B).
    pub fn lookhd_search(&self) -> OpCounts {
        let (k, d) = (self.n_classes as u64, self.dim as u64);
        let g = self.n_vectors() as u64;
        OpCounts {
            mults: g * d,
            adds: k * d,
            compares: k,
            negations: k * d,
            lookups: 0,
            mem_bytes: g * d * 4, // only the combined vectors are streamed
        }
    }

    /// LookHD per-sample *training* work: quantization plus `m` counter
    /// increments — no hypervector arithmetic (§III-D).
    pub fn lookhd_observe(&self) -> OpCounts {
        let (n, q) = (self.n_features as u64, self.q as u64);
        let m = self.n_chunks() as u64;
        OpCounts {
            mults: 0,
            adds: n * q + m,
            compares: n * q,
            negations: 0,
            lookups: m,
            mem_bytes: m * 8, // read-modify-write a counter word
        }
    }

    /// Rows per chunk that actually carry non-zero counters, bounded by
    /// both the table size and the per-class sample count.
    pub fn touched_rows(&self) -> u64 {
        let k = self.n_classes as u64;
        let per_class_samples = (self.train_samples as u64).div_ceil(k);
        self.table_rows().min(per_class_samples)
    }

    /// LookHD training finalize (once): scan the `q^r` counter array of
    /// every chunk/class, multiply the non-zero counters into pre-stored
    /// rows, and aggregate chunks with the position keys.
    pub fn lookhd_finalize(&self) -> OpCounts {
        let d = self.dim as u64;
        let m = self.n_chunks() as u64;
        let k = self.n_classes as u64;
        let weighted_rows = k * m * self.touched_rows();
        let counter_scan = k * m * self.table_rows();
        OpCounts {
            mults: weighted_rows * d,
            adds: weighted_rows * d + k * m * d + counter_scan, // accumulate + aggregation + scan
            compares: counter_scan,                             // zero tests while scanning
            negations: k * m * d,                               // position-key binding
            lookups: weighted_rows,
            mem_bytes: weighted_rows * self.lut_row_bytes() + counter_scan * 4,
        }
    }

    /// LookHD *initial* training (the Fig. 13 phase): stream every sample
    /// through the counters, then finalize. No retraining, no compression.
    pub fn lookhd_initial_training(&self) -> OpCounts {
        self.lookhd_observe().scaled(self.train_samples as u64) + self.lookhd_finalize()
    }

    /// One LookHD retraining epoch on the compressed model: encode +
    /// compressed search per sample, two keyed `D`-wide updates per
    /// misprediction (§IV-D).
    pub fn lookhd_retrain_epoch(&self) -> OpCounts {
        let per_sample = self.lookhd_encode() + self.lookhd_search();
        let updates = OpCounts {
            adds: 2 * self.dim as u64,
            negations: 2 * self.dim as u64,
            mem_bytes: 2 * self.dim as u64 * 4,
            ..OpCounts::zero()
        }
        .scaled(self.avg_updates_per_epoch as u64);
        per_sample.scaled(self.train_samples as u64) + updates
    }

    /// Full LookHD training: counter pass + finalize + compression +
    /// retraining epochs.
    pub fn lookhd_training(&self) -> OpCounts {
        let compress = OpCounts {
            // normalize + key-bind-accumulate each class once
            mults: (self.n_classes * self.dim) as u64,
            adds: (self.n_classes * self.dim) as u64,
            negations: (self.n_classes * self.dim) as u64,
            mem_bytes: (self.n_classes * self.dim * 4) as u64,
            ..OpCounts::zero()
        };
        self.lookhd_observe().scaled(self.train_samples as u64)
            + self.lookhd_finalize()
            + compress
            + self
                .lookhd_retrain_epoch()
                .scaled(self.retrain_epochs as u64)
    }

    /// Full LookHD inference for one query: lookup encode + compressed
    /// search.
    pub fn lookhd_inference(&self) -> OpCounts {
        self.lookhd_encode() + self.lookhd_search()
    }

    /// Model sizes in bytes: `(baseline, lookhd_compressed)` under the
    /// paper's accounting (combined int32 vectors; `P'` keys regenerate
    /// from a seed).
    pub fn model_bytes(&self) -> (u64, u64) {
        let base = (self.n_classes * self.dim * 4) as u64;
        let compressed = (self.n_vectors() * self.dim * 4) as u64;
        (base, compressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> WorkloadShape {
        WorkloadShape {
            n_features: 10,
            q: 4,
            dim: 100,
            n_classes: 3,
            r: 5,
            max_classes_per_vector: 12,
            train_samples: 30,
            retrain_epochs: 2,
            avg_updates_per_epoch: 5,
        }
    }

    #[test]
    fn derived_geometry() {
        let s = shape();
        assert_eq!(s.n_chunks(), 2);
        assert_eq!(s.n_vectors(), 1);
        assert_eq!(s.table_rows(), 1024);
        // values in [-5, 5] → 11 states → 4 bits
        assert_eq!(s.lut_element_bits(), 4);
    }

    #[test]
    fn baseline_encode_counts_by_hand() {
        let s = shape();
        let c = s.baseline_encode();
        assert_eq!(c.adds, 10 * 4 + 10 * 100);
        assert_eq!(c.compares, 40);
        assert_eq!(c.lookups, 10);
        assert_eq!(c.mem_bytes, 10 * 100 / 8);
        assert_eq!(c.mults, 0);
    }

    #[test]
    fn lookhd_encode_is_much_cheaper_than_baseline() {
        // SPEECH shape: the m ≪ n advantage (§VI-D).
        let s = WorkloadShape {
            n_features: 617,
            q: 4,
            dim: 2000,
            n_classes: 26,
            r: 5,
            max_classes_per_vector: 12,
            train_samples: 1000,
            retrain_epochs: 10,
            avg_updates_per_epoch: 100,
        };
        let base = s.baseline_encode();
        let look = s.lookhd_encode();
        assert!(
            base.adds > 4 * look.adds,
            "base {} vs look {}",
            base.adds,
            look.adds
        );
    }

    #[test]
    fn lookhd_search_mults_independent_of_k_when_single_vector() {
        let mut s = shape();
        s.max_classes_per_vector = 64;
        s.n_classes = 2;
        let m2 = s.lookhd_search().mults;
        s.n_classes = 48;
        let m48 = s.lookhd_search().mults;
        assert_eq!(m2, m48, "single-vector mults must not grow with k");
        // Baseline mults do grow linearly.
        assert_eq!(s.baseline_search().mults, 48 * 100);
    }

    #[test]
    fn lookhd_observe_has_no_hypervector_arithmetic() {
        let s = shape();
        let c = s.lookhd_observe();
        assert_eq!(c.mults, 0);
        assert!(
            c.adds < (s.dim as u64),
            "per-sample adds must be D-independent"
        );
    }

    #[test]
    fn finalize_touched_rows_bounded_by_samples() {
        let mut s = shape();
        // 30 samples / 3 classes = 10 < 1024 rows.
        let f = s.lookhd_finalize();
        assert_eq!(f.mults, 3 * 2 * 10 * 100);
        // Tiny table: bound switches to q^r.
        s.q = 2;
        s.r = 2;
        let f = s.lookhd_finalize();
        assert_eq!(f.mults, 3 * 5 * 4 * 100);
    }

    #[test]
    fn training_totals_compose() {
        let s = shape();
        let total = s.baseline_training();
        let manual = s.baseline_initial_training() + s.baseline_retrain_epoch().scaled(2);
        assert_eq!(total, manual);
        let lt = s.lookhd_training();
        assert!(lt.total_ops() > s.lookhd_finalize().total_ops());
    }

    #[test]
    fn model_bytes_match_paper_accounting() {
        let mut s = shape();
        s.n_classes = 26;
        s.max_classes_per_vector = 12;
        let (base, comp) = s.model_bytes();
        assert_eq!(base, 26 * 100 * 4);
        assert_eq!(comp, 3 * 100 * 4);
        s.max_classes_per_vector = 26;
        assert_eq!(s.model_bytes().1, 100 * 4);
    }

    #[test]
    fn retrain_epoch_includes_update_cost() {
        let s = shape();
        let with = s.lookhd_retrain_epoch();
        let mut s0 = s;
        s0.avg_updates_per_epoch = 0;
        let without = s0.lookhd_retrain_epoch();
        assert_eq!(with.adds - without.adds, 5 * 2 * 100);
    }
}
