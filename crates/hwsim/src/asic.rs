//! A fixed-function ASIC projection (§I: "All proposed optimizations are
//! general and can be implemented on any digital processor, including an
//! ASIC chip").
//!
//! The model projects the FPGA design onto a standard-cell ASIC with the
//! usual technology scaling: higher clock, denser logic (more parallel
//! lanes in the same area class), and far lower energy per operation.
//! Per-op energies follow published 28/45 nm arithmetic figures
//! (int16 add ≈ 0.05 pJ, int16 multiply ≈ 0.8 pJ at 45 nm, plus SRAM
//! access energy), making the ASIC the energy-floor reference point the
//! paper alludes to.

use crate::opcounts::OpCounts;
use crate::report::CostEstimate;

/// Per-op-energy ASIC model with lane-limited throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicModel {
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Parallel multiply lanes.
    pub mult_lanes: u64,
    /// Parallel add/negate/compare lanes.
    pub add_lanes: u64,
    /// On-chip SRAM bandwidth in bytes per cycle.
    pub sram_bytes_per_cycle: f64,
    /// Energy per integer multiply (joules).
    pub energy_per_mult: f64,
    /// Energy per add/negate/compare (joules).
    pub energy_per_add: f64,
    /// Energy per SRAM byte (joules).
    pub energy_per_byte: f64,
    /// Leakage/clock-tree power (watts).
    pub static_power_w: f64,
}

impl AsicModel {
    /// A 45 nm-class embedded accelerator: 1 GHz, 256 multipliers,
    /// 8192 adder lanes, 64 B/cycle SRAM.
    pub fn embedded_45nm() -> Self {
        Self {
            clock_hz: 1e9,
            mult_lanes: 256,
            add_lanes: 8192,
            sram_bytes_per_cycle: 64.0,
            energy_per_mult: 0.8e-12,
            energy_per_add: 0.05e-12,
            energy_per_byte: 1.2e-12,
            static_power_w: 0.05,
        }
    }

    /// Cycles for an operation mix on the lane pools.
    pub fn cycles(&self, ops: &OpCounts) -> f64 {
        let mult_cycles = ops.mults as f64 / self.mult_lanes as f64;
        let add_ops = ops.adds + ops.negations + ops.compares;
        let add_cycles = add_ops as f64 / self.add_lanes as f64;
        let mem_cycles = ops.mem_bytes as f64 / self.sram_bytes_per_cycle;
        mult_cycles.max(add_cycles).max(mem_cycles) + 16.0
    }

    /// Executes an operation mix: lane-limited time, per-op energy.
    pub fn execute(&self, ops: &OpCounts) -> CostEstimate {
        let seconds = self.cycles(ops) / self.clock_hz;
        let add_ops = ops.adds + ops.negations + ops.compares;
        let dynamic = ops.mults as f64 * self.energy_per_mult
            + add_ops as f64 * self.energy_per_add
            + ops.mem_bytes as f64 * self.energy_per_byte;
        CostEstimate::new(seconds, dynamic + seconds * self.static_power_w)
    }
}

impl Default for AsicModel {
    fn default() -> Self {
        Self::embedded_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;
    use crate::fpga::{FpgaModel, FpgaPhase};
    use crate::workload::WorkloadShape;

    fn speech_shape() -> WorkloadShape {
        WorkloadShape {
            n_features: 617,
            q: 4,
            dim: 2000,
            n_classes: 26,
            r: 5,
            max_classes_per_vector: 12,
            train_samples: 1560,
            retrain_epochs: 10,
            avg_updates_per_epoch: 150,
        }
    }

    #[test]
    fn asic_beats_fpga_beats_cpu_on_energy() {
        let shape = speech_shape();
        let work = shape.lookhd_inference();
        let asic = AsicModel::embedded_45nm().execute(&work);
        let fpga = FpgaModel::kc705().execute_as(&work, FpgaPhase::LookHdInference);
        let cpu = CpuModel::cortex_a53().execute(&work);
        assert!(asic.joules < fpga.joules, "ASIC must beat FPGA energy");
        assert!(fpga.joules < cpu.joules, "FPGA must beat CPU energy");
    }

    #[test]
    fn asic_is_fastest_per_query() {
        let shape = speech_shape();
        let work = shape.lookhd_inference();
        let asic = AsicModel::embedded_45nm().execute(&work);
        let cpu = CpuModel::cortex_a53().execute(&work);
        assert!(asic.speedup_over(&cpu) > 10.0);
    }

    #[test]
    fn time_is_lane_limited_energy_is_op_limited() {
        let asic = AsicModel::embedded_45nm();
        let a = OpCounts {
            adds: 1_000_000,
            ..OpCounts::zero()
        };
        let b = OpCounts {
            adds: 2_000_000,
            ..OpCounts::zero()
        };
        let ca = asic.execute(&a);
        let cb = asic.execute(&b);
        assert!(cb.seconds > ca.seconds);
        // Dynamic energy doubles with the op count (minus static share).
        let dyn_a = ca.joules - ca.seconds * asic.static_power_w;
        let dyn_b = cb.joules - cb.seconds * asic.static_power_w;
        assert!((dyn_b / dyn_a - 2.0).abs() < 1e-9);
    }
}
