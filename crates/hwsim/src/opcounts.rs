//! Architecture-neutral operation counts.
//!
//! Every algorithm phase (encoding, training, associative search,
//! retraining) is described by how many primitive operations it performs;
//! the platform models in [`crate::cpu`], [`crate::fpga`], and
//! [`crate::gpu`] then turn counts into time and energy. Keeping the counts
//! platform-independent is what lets one workload description drive the
//! paper's CPU/FPGA/GPU comparisons consistently.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Primitive operation counts for one algorithm phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Integer multiplications (DSP work on the FPGA).
    pub mults: u64,
    /// Integer additions/subtractions (LUT/FF adder trees).
    pub adds: u64,
    /// Comparisons (quantization level search, argmax).
    pub compares: u64,
    /// Sign negations (hardware "negation blocks"; free-ish muxes).
    pub negations: u64,
    /// Random-access table lookups (BRAM/cache reads of whole rows).
    pub lookups: u64,
    /// Bytes moved from memory (row fetches, model streaming).
    pub mem_bytes: u64,
}

impl OpCounts {
    /// The all-zero count.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total arithmetic operations (excludes memory traffic).
    pub fn total_ops(&self) -> u64 {
        self.mults + self.adds + self.compares + self.negations + self.lookups
    }

    /// Scales every count by `n` (e.g. per-sample → per-epoch).
    pub fn scaled(&self, n: u64) -> Self {
        Self {
            mults: self.mults * n,
            adds: self.adds * n,
            compares: self.compares * n,
            negations: self.negations * n,
            lookups: self.lookups * n,
            mem_bytes: self.mem_bytes * n,
        }
    }
}

impl Add for OpCounts {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            mults: self.mults + rhs.mults,
            adds: self.adds + rhs.adds,
            compares: self.compares + rhs.compares,
            negations: self.negations + rhs.negations,
            lookups: self.lookups + rhs.lookups,
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for OpCounts {
    type Output = Self;

    fn mul(self, rhs: u64) -> Self {
        self.scaled(rhs)
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpCounts {
        OpCounts {
            mults: 1,
            adds: 2,
            compares: 3,
            negations: 4,
            lookups: 5,
            mem_bytes: 6,
        }
    }

    #[test]
    fn arithmetic_composes() {
        let a = sample();
        let b = a + a;
        assert_eq!(b.mults, 2);
        assert_eq!(b.mem_bytes, 12);
        assert_eq!(a.scaled(3).adds, 6);
        assert_eq!((a * 3).adds, 6);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
    }

    #[test]
    fn total_ops_excludes_memory() {
        assert_eq!(sample().total_ops(), 15);
    }

    #[test]
    fn sum_over_iterator() {
        let total: OpCounts = (0..4).map(|_| sample()).sum();
        assert_eq!(total, sample().scaled(4));
    }
}
