//! Cost estimates and comparison helpers (speedup, energy efficiency, EDP).

use std::fmt;

/// A platform-level cost estimate for one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Execution time in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub joules: f64,
}

impl CostEstimate {
    /// Creates an estimate, validating both components are finite and
    /// non-negative.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite inputs.
    pub fn new(seconds: f64, joules: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid seconds {seconds}"
        );
        assert!(
            joules.is_finite() && joules >= 0.0,
            "invalid joules {joules}"
        );
        Self { seconds, joules }
    }

    /// Energy-delay product (J·s), the Fig. 15b metric.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }

    /// `other.seconds / self.seconds` — how much faster `self` is.
    pub fn speedup_over(&self, other: &CostEstimate) -> f64 {
        other.seconds / self.seconds
    }

    /// `other.joules / self.joules` — how much more energy-efficient
    /// `self` is.
    pub fn energy_efficiency_over(&self, other: &CostEstimate) -> f64 {
        other.joules / self.joules
    }

    /// `other.edp() / self.edp()` — EDP improvement of `self`.
    pub fn edp_improvement_over(&self, other: &CostEstimate) -> f64 {
        other.edp() / self.edp()
    }

    /// Sums component-wise (sequential phases).
    pub fn plus(&self, other: &CostEstimate) -> CostEstimate {
        CostEstimate {
            seconds: self.seconds + other.seconds,
            joules: self.joules + other.joules,
        }
    }

    /// Scales both components by `n` (e.g. per-query → per-batch).
    pub fn scaled(&self, n: f64) -> CostEstimate {
        CostEstimate {
            seconds: self.seconds * n,
            joules: self.joules * n,
        }
    }
}

impl fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} s / {:.3e} J", self.seconds, self.joules)
    }
}

/// Geometric mean of a ratio series — the "on average, X× faster" numbers
/// the paper reports across the five applications.
///
/// # Panics
///
/// Panics if `ratios` is empty or contains a non-positive value.
pub fn geomean(ratios: &[f64]) -> f64 {
    assert!(!ratios.is_empty(), "geomean of empty slice");
    assert!(
        ratios.iter().all(|&r| r > 0.0 && r.is_finite()),
        "geomean requires positive finite ratios: {ratios:?}"
    );
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_directionally_correct() {
        let fast = CostEstimate::new(1.0, 2.0);
        let slow = CostEstimate::new(4.0, 10.0);
        assert_eq!(fast.speedup_over(&slow), 4.0);
        assert_eq!(fast.energy_efficiency_over(&slow), 5.0);
        assert_eq!(fast.edp_improvement_over(&slow), 20.0);
    }

    #[test]
    fn composition_helpers() {
        let a = CostEstimate::new(1.0, 2.0);
        let b = CostEstimate::new(0.5, 1.0);
        let sum = a.plus(&b);
        assert_eq!(sum.seconds, 1.5);
        assert_eq!(sum.joules, 3.0);
        let scaled = a.scaled(3.0);
        assert_eq!(scaled.seconds, 3.0);
        assert_eq!(scaled.joules, 6.0);
        assert_eq!(a.edp(), 2.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 16.0]) - 8.0).abs() < 1e-12);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn cost_estimate_validates() {
        let _ = CostEstimate::new(-1.0, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CostEstimate::new(1.0, 1.0)).is_empty());
    }
}
