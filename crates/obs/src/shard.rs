//! Lock-striped metric shards: the write side of the registry.
//!
//! A registry owns [`N_SHARDS`] independently locked shards. Every
//! thread is assigned one shard index on first use (round-robin from a
//! process-global counter), so with up to [`N_SHARDS`] recording
//! threads the record path takes an **uncontended** mutex — no shared
//! lock, no allocation, no string hashing (ids are pre-interned
//! integers indexing a lazily grown cell vector). Snapshots walk the
//! shards one at a time and merge cells by id; holding each shard lock
//! only while copying it keeps writers unblocked.
//!
//! Cells keep three layers of state: cumulative stats (count/total/
//! min/max/histogram — exact, since boot), a rolling window ring (see
//! [`crate::window`]), and for spans a tiny ring of *tail exemplars* —
//! the trace ids of the most recent observations landing in the cell's
//! top histogram buckets, exported as OpenMetrics exemplars so a tail
//! latency spike links straight to `/trace.json`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::window::{CounterWin, SpanWin};
use crate::{bucket_index, duration_ns, N_BUCKETS};

/// Number of lock stripes per registry. Threads are assigned stripes
/// round-robin, so up to this many concurrent recorders never share a
/// lock.
pub const N_SHARDS: usize = 16;

/// Tail exemplars kept per span cell per shard (the snapshot keeps the
/// `N_EXEMPLARS` most recent across shards).
pub const N_EXEMPLARS: usize = 4;

/// Global round-robin source for per-thread shard indices.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// Global recency sequence for exemplars. Pushes are rare (top-bucket
/// hits only), so one shared relaxed counter costs nothing measurable.
static EXEMPLAR_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's shard index, fixed on first use.
    static SHARD_INDEX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
}

/// The calling thread's shard index.
pub(crate) fn shard_index() -> usize {
    SHARD_INDEX.with(|i| *i)
}

/// One tail-latency exemplar: a trace id caught landing in a span's top
/// histogram buckets, resolvable against the trace ring's export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Exemplar {
    /// The observation's propagated trace id (never 0 — id-less
    /// observations are not sampled).
    pub trace_id: u64,
    /// The observed duration in nanoseconds.
    pub value_ns: u64,
}

/// An exemplar plus its recency sequence (internal: the snapshot sorts
/// by sequence to keep the newest across shards).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SeqExemplar {
    pub seq: u64,
    pub exemplar: Exemplar,
}

/// Per-shard state of one counter id.
#[derive(Debug)]
pub(crate) struct CounterCell {
    pub value: u64,
    pub win: CounterWin,
}

impl CounterCell {
    fn new() -> Self {
        Self {
            value: 0,
            win: CounterWin::new(),
        }
    }

    pub(crate) fn add(&mut self, delta: u64, epoch: u64) {
        self.value += delta;
        self.win.add(epoch, delta);
    }
}

/// Per-shard state of one span id.
#[derive(Debug)]
pub(crate) struct SpanCell {
    pub count: u64,
    pub total: Duration,
    pub min: Duration,
    pub max: Duration,
    pub buckets: [u64; N_BUCKETS],
    pub win: SpanWin,
    /// Highest histogram bucket this cell has ever filled; observations
    /// landing within one bucket of it are exemplar candidates.
    max_bucket: usize,
    exemplars: [SeqExemplar; N_EXEMPLARS],
    ex_next: usize,
}

impl SpanCell {
    fn new() -> Self {
        Self {
            count: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
            buckets: [0; N_BUCKETS],
            win: SpanWin::new(),
            max_bucket: 0,
            exemplars: [SeqExemplar::default(); N_EXEMPLARS],
            ex_next: 0,
        }
    }

    pub(crate) fn observe(&mut self, d: Duration, trace_id: u64, epoch: u64) {
        let bucket = bucket_index(d);
        let ns = duration_ns(d);
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.buckets[bucket] += 1;
        self.win.observe(epoch, bucket, ns);
        if bucket > self.max_bucket {
            self.max_bucket = bucket;
        }
        // Tail exemplar: a traced observation within one bucket of the
        // largest this cell has seen.
        if trace_id != 0 && bucket + 1 >= self.max_bucket {
            let seq = EXEMPLAR_SEQ.fetch_add(1, Ordering::Relaxed);
            self.exemplars[self.ex_next] = SeqExemplar {
                seq,
                exemplar: Exemplar {
                    trace_id,
                    value_ns: ns,
                },
            };
            self.ex_next = (self.ex_next + 1) % N_EXEMPLARS;
        }
    }

    /// The cell's buffered exemplars (unsorted; seq 0 = empty slot).
    pub(crate) fn exemplars(&self) -> impl Iterator<Item = &SeqExemplar> {
        self.exemplars.iter().filter(|e| e.seq != 0)
    }
}

/// One lock stripe: lazily grown cell vectors indexed by metric id.
#[derive(Debug)]
pub(crate) struct Shard {
    pub counters: Vec<Option<Box<CounterCell>>>,
    pub spans: Vec<Option<Box<SpanCell>>>,
}

impl Shard {
    pub(crate) const fn new() -> Self {
        Self {
            counters: Vec::new(),
            spans: Vec::new(),
        }
    }

    pub(crate) fn counter_cell(&mut self, id: usize) -> &mut CounterCell {
        if self.counters.len() <= id {
            self.counters.resize_with(id + 1, || None);
        }
        self.counters[id].get_or_insert_with(|| Box::new(CounterCell::new()))
    }

    pub(crate) fn span_cell(&mut self, id: usize) -> &mut SpanCell {
        if self.spans.len() <= id {
            self.spans.resize_with(id + 1, || None);
        }
        self.spans[id].get_or_insert_with(|| Box::new(SpanCell::new()))
    }

    pub(crate) fn clear(&mut self) {
        self.counters.clear();
        self.spans.clear();
    }
}
