//! Std-only observability layer: hierarchical spans, counters, and
//! duration histograms behind a cheap process-global registry.
//!
//! The ROADMAP's serving ambitions need stage-level cost accounting — the
//! paper's Fig. 2 breakdown (encode vs train-add vs associative search) as
//! a *measured* artifact of every run, not a one-off experiment. This
//! crate provides that accounting with zero external dependencies:
//!
//! * **Spans** — scope-guard timers ([`span`]) that nest hierarchically
//!   per thread: a span opened while another is active on the same thread
//!   records under `parent/child`. Each distinct path aggregates a count,
//!   total/min/max, and a fixed power-of-two-nanosecond histogram.
//! * **Counters** — monotonic `u64` counters ([`counter`]).
//! * **Raw durations** — [`record`] files a duration under an explicit
//!   path, ignoring the thread's span stack; the execution engine uses it
//!   to fold per-shard timings into the same registry.
//!
//! ## Cost model
//!
//! The registry is **disabled by default**. Every instrumentation entry
//! point first checks one relaxed atomic load and returns immediately when
//! disabled, so instrumented hot paths (per-sample encode, per-query
//! predict) cost one predictable branch. When enabled, closing a span
//! costs a thread-local string edit plus one short mutex-protected map
//! update (~a hundred nanoseconds) — small against the microsecond-scale
//! stages it wraps, but not free; enable it for runs you want to measure
//! (CLI `--metrics`, `LOOKHD_METRICS=1` benches), not in inner loops of
//! your own.
//!
//! Worker threads spawned by `lookhd-engine` start with an empty span
//! stack, so per-sample spans executed on workers record under their own
//! root (e.g. `encode`) rather than under the dispatching span (e.g.
//! `fit/encode_batch/encode`). Consumers should therefore match stage
//! names by path *segment*, not by exact path (see
//! [`Snapshot::total_for`]).
//!
//! ## Emitters
//!
//! [`Snapshot::to_json`] renders the deterministic JSON document written
//! by the CLI's `--metrics` flag (schema documented on the method);
//! [`Snapshot::to_pretty`] renders an aligned text table for humans;
//! [`Snapshot::to_prometheus`] renders Prometheus text exposition for
//! live scraping (the serve admin endpoint).
//!
//! ## Tracing
//!
//! The [`trace`] module is the per-request complement to this aggregate
//! registry: a bounded, lock-striped ring of begin/end events carrying
//! propagated trace ids, exportable as Chrome trace-event JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i` holds durations whose
/// nanosecond count has bit-length `i` (i.e. `2^(i-1) ≤ ns < 2^i`;
/// bucket 0 holds exact zeros). 40 buckets span 1 ns to ~9 minutes;
/// longer durations clamp into the last bucket.
pub const N_BUCKETS: usize = 40;

/// Separator between nested span names in a recorded path.
pub const PATH_SEPARATOR: char = '/';

/// Most distinct span paths a registry will hold. Callers that
/// interpolate unbounded values into span names (request ids, user
/// input) can no longer grow the map without limit: observations for
/// paths beyond the cap are dropped and tallied in the
/// [`DROPPED_NAMES_COUNTER`] counter instead of allocating.
pub const MAX_SPAN_PATHS: usize = 1024;

/// Most distinct counter names a registry will hold (see
/// [`MAX_SPAN_PATHS`]).
pub const MAX_COUNTER_NAMES: usize = 1024;

/// Counter name under which dropped-by-cardinality-cap observations are
/// reported in snapshots.
pub const DROPPED_NAMES_COUNTER: &str = "obs.dropped_names";

thread_local! {
    /// The calling thread's active span path ("a/b/c" while spans a, b, c
    /// are open). Guards push on creation and truncate back on drop.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Accum {
    count: u64,
    total: Duration,
    min: Duration,
    max: Duration,
    buckets: [u64; N_BUCKETS],
}

impl Accum {
    fn new() -> Self {
        Self {
            count: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
            buckets: [0; N_BUCKETS],
        }
    }

    fn observe(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.buckets[bucket_index(d)] += 1;
    }
}

/// The histogram bucket a duration falls into (bit length of its
/// nanosecond count, clamped to the last bucket).
pub fn bucket_index(d: Duration) -> usize {
    let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
    let bits = (u64::BITS - ns.leading_zeros()) as usize;
    bits.min(N_BUCKETS - 1)
}

/// Inclusive nanosecond upper bound of histogram bucket `i`.
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug, Default)]
struct Inner {
    spans: BTreeMap<String, Accum>,
    counters: BTreeMap<String, u64>,
    /// Observations dropped because a cardinality cap was hit.
    dropped_names: u64,
}

/// A metrics registry: named span statistics plus named counters.
///
/// All methods are thread-safe. The process-global instance behind
/// [`global`] is what the free-function API ([`span`], [`counter`],
/// [`record`], [`snapshot`]) operates on.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates a disabled, empty registry.
    pub const fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                spans: BTreeMap::new(),
                counters: BTreeMap::new(),
                dropped_names: 0,
            }),
        }
    }

    /// Whether instrumentation records into this registry.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Existing data is kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Clears all recorded spans and counters (the enabled flag is kept).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.dropped_names = 0;
    }

    /// Records one duration observation under `path`, bypassing the
    /// calling thread's span stack. No-op while disabled. A *new* path
    /// beyond [`MAX_SPAN_PATHS`] is dropped (tallied in
    /// [`DROPPED_NAMES_COUNTER`]) instead of growing the map.
    pub fn record_span(&self, path: &str, d: Duration) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        if !inner.spans.contains_key(path) && inner.spans.len() >= MAX_SPAN_PATHS {
            inner.dropped_names += 1;
            return;
        }
        inner
            .spans
            .entry(path.to_owned())
            .or_insert_with(Accum::new)
            .observe(d);
    }

    /// Adds `delta` to the monotonic counter `name`. No-op while
    /// disabled. A *new* name beyond [`MAX_COUNTER_NAMES`] is dropped
    /// (tallied in [`DROPPED_NAMES_COUNTER`]) instead of growing the map.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        if !inner.counters.contains_key(name) && inner.counters.len() >= MAX_COUNTER_NAMES {
            inner.dropped_names += 1;
            return;
        }
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// A point-in-time copy of every span and counter, sorted by path.
    /// Observations dropped by the cardinality caps surface as the
    /// [`DROPPED_NAMES_COUNTER`] counter.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(name, &value)| (name.clone(), value))
            .collect();
        if inner.dropped_names > 0 {
            match counters
                .iter_mut()
                .find(|(n, _)| n == DROPPED_NAMES_COUNTER)
            {
                Some((_, v)) => *v += inner.dropped_names,
                None => {
                    counters.push((DROPPED_NAMES_COUNTER.to_owned(), inner.dropped_names));
                    counters.sort_by(|a, b| a.0.cmp(&b.0));
                }
            }
        }
        Snapshot {
            spans: inner
                .spans
                .iter()
                .map(|(path, a)| SpanStats {
                    path: path.clone(),
                    count: a.count,
                    total: a.total,
                    min: if a.count == 0 { Duration::ZERO } else { a.min },
                    max: a.max,
                    buckets: a.buckets,
                })
                .collect(),
            counters,
        }
    }

    /// Locks the interior map, recovering from a poisoned lock (a panic
    /// while holding it can at worst lose in-flight observations).
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-global registry used by the free-function API.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Whether the global registry is recording.
pub fn enabled() -> bool {
    GLOBAL.enabled()
}

/// Enables or disables recording into the global registry.
pub fn set_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

/// Clears the global registry's recorded data.
pub fn reset() {
    GLOBAL.reset();
}

/// Adds `delta` to global counter `name` (one atomic load when disabled).
pub fn counter(name: &str, delta: u64) {
    GLOBAL.add(name, delta);
}

/// Records a duration under an explicit `path` in the global registry,
/// independent of the calling thread's span stack.
pub fn record(path: &str, d: Duration) {
    GLOBAL.record_span(path, d);
}

/// A point-in-time copy of the global registry.
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

/// Opens a scope-guard span named `name` on the calling thread.
///
/// While the guard lives, further spans on the same thread nest under it
/// (`parent/child` paths). Dropping the guard records the elapsed time.
/// When the registry is disabled at open time the guard is inert — one
/// relaxed atomic load is the entire cost.
#[must_use = "a span records its duration when dropped"]
pub fn span(name: &str) -> SpanGuard {
    if !GLOBAL.enabled() {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    let prev_len = SPAN_PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev = p.len();
        if !p.is_empty() {
            p.push(PATH_SEPARATOR);
        }
        p.push_str(name);
        prev
    });
    SpanGuard {
        active: Some(ActiveSpan {
            started: Instant::now(),
            prev_len,
        }),
        _not_send: PhantomData,
    }
}

#[derive(Debug)]
struct ActiveSpan {
    started: Instant,
    prev_len: usize,
}

/// Scope guard returned by [`span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Guards edit a thread-local path stack, so they must be dropped on
    /// the thread that created them.
    _not_send: PhantomData<*mut ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.started.elapsed();
        SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            GLOBAL.record_span(&p, elapsed);
            p.truncate(active.prev_len);
        });
    }
}

/// Aggregated statistics of one span path in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Hierarchical path, e.g. `fit/counter_train`.
    pub path: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observed durations.
    pub total: Duration,
    /// Smallest observation ([`Duration::ZERO`] when `count == 0`).
    pub min: Duration,
    /// Largest observation.
    pub max: Duration,
    /// Power-of-two-nanosecond histogram (see [`bucket_index`]).
    pub buckets: [u64; N_BUCKETS],
}

impl SpanStats {
    /// Mean observation duration (zero when nothing was recorded).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// The final path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path
            .rsplit(PATH_SEPARATOR)
            .next()
            .unwrap_or(&self.path)
    }

    /// Exact-rank quantile extracted from the power-of-two histogram, in
    /// nanoseconds.
    ///
    /// The rank is `max(1, ceil(p · count))` (the same ceil-rank
    /// convention as `loadgen`: p99 of 100 observations is the 99th in
    /// ascending order, never an earlier one). The returned value is the
    /// inclusive upper bound of the bucket holding that observation,
    /// clamped to the observed `[min, max]` — an upper bound on the true
    /// quantile that is tight to within the bucket's power-of-two width
    /// (< 2× relative error) and exact when the bucket holds the
    /// extremes. Returns 0 when nothing was recorded.
    pub fn quantile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let min_ns = duration_ns(self.min);
        let max_ns = duration_ns(self.max);
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(i).clamp(min_ns, max_ns);
            }
        }
        max_ns
    }
}

/// A duration's nanosecond count, saturated to `u64`.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// A point-in-time copy of a registry: spans and counters, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanStats>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl Snapshot {
    /// Sum of total durations over every span *named* `name` — i.e. whose
    /// final path segment equals it exactly, so `encode` matches
    /// `fit/encode_batch/encode` but neither `fit/encode_batch` nor a
    /// nested child of an `encode` span. This is the stage-attribution
    /// query: it folds the same logical stage recorded at different
    /// nesting depths (serial vs worker-thread execution) into one number
    /// without double-counting parents.
    pub fn total_for(&self, name: &str) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.name() == name)
            .map(|s| s.total)
            .sum()
    }

    /// Value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Renders the snapshot as one deterministic JSON document.
    ///
    /// Schema (`version` 2 — version 1 plus the `p50_ns`/`p95_ns`/
    /// `p99_ns` quantile fields, see [`SpanStats::quantile_ns`]):
    ///
    /// ```json
    /// {
    ///   "version": 2,
    ///   "spans": [
    ///     {
    ///       "path": "fit/counter_train",
    ///       "count": 1,
    ///       "total_ns": 1234567,
    ///       "min_ns": 1234567,
    ///       "max_ns": 1234567,
    ///       "mean_ns": 1234567,
    ///       "p50_ns": 1234567,
    ///       "p95_ns": 1234567,
    ///       "p99_ns": 1234567,
    ///       "buckets": [ { "le_ns": 2097151, "count": 1 } ]
    ///     }
    ///   ],
    ///   "counters": [ { "name": "encode.samples", "value": 60 } ]
    /// }
    /// ```
    ///
    /// Only non-empty histogram buckets are emitted; `le_ns` is the
    /// bucket's inclusive nanosecond upper bound. Span entries are sorted
    /// by path, counters by name.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.spans.len());
        out.push_str("{\n  \"version\": 2,\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": {}, \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
                json_string(&s.path),
                s.count,
                s.total.as_nanos(),
                s.min.as_nanos(),
                s.max.as_nanos(),
                s.mean().as_nanos(),
                s.quantile_ns(0.50),
                s.quantile_ns(0.95),
                s.quantile_ns(0.99),
            );
            let mut first = true;
            for (b, &count) in s.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"le_ns\": {}, \"count\": {count}}}",
                    bucket_upper_ns(b)
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"value\": {value}}}",
                json_string(name)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders an aligned human-readable table, spans sorted by total
    /// time descending.
    pub fn to_pretty(&self) -> String {
        let mut spans: Vec<&SpanStats> = self.spans.iter().collect();
        spans.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.path.cmp(&b.path)));
        let width = spans
            .iter()
            .map(|s| s.path.len())
            .chain(self.counters.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max(4);
        let mut out = String::new();
        out.push_str("spans (by total time):\n");
        if spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for s in spans {
            let _ = writeln!(
                out,
                "  {:width$}  {:>8}x  total {:>10}  mean {:>10}  p50 {:>10}  p99 {:>10}  max {:>10}",
                s.path,
                s.count,
                fmt_duration(s.total),
                fmt_duration(s.mean()),
                fmt_duration(Duration::from_nanos(s.quantile_ns(0.50))),
                fmt_duration(Duration::from_nanos(s.quantile_ns(0.99))),
                fmt_duration(s.max),
            );
        }
        out.push_str("counters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:width$}  {value}");
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (format version 0.0.4), for live scraping.
    ///
    /// Name mapping (documented in DESIGN.md §11): every character
    /// outside `[a-zA-Z0-9_]` in a span path or counter name becomes
    /// `_`, counters are prefixed `lookhd_` and spans `lookhd_span_`
    /// with an `_ns` unit suffix, so `serve/queue_wait` exports as the
    /// histogram `lookhd_span_serve_queue_wait_ns`. Buckets are
    /// **cumulative** with integer-nanosecond `le` bounds (the
    /// power-of-two `2^i - 1` uppers; a deliberate deviation from the
    /// seconds-base-unit convention to keep every exported number an
    /// exact integer); only buckets holding observations are listed plus
    /// the mandatory `+Inf`. Output is deterministic: spans sorted by
    /// path, counters by name, fixed field order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.spans.len());
        for s in &self.spans {
            let name = format!("lookhd_span_{}_ns", prometheus_sanitize(&s.path));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (b, &count) in s.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let upper = bucket_upper_ns(b);
                if upper == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
            let _ = writeln!(out, "{name}_sum {}", s.total.as_nanos());
            let _ = writeln!(out, "{name}_count {}", s.count);
        }
        for (name, value) in &self.counters {
            let metric = format!("lookhd_{}", prometheus_sanitize(name));
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {value}");
        }
        out
    }
}

/// Maps an arbitrary span/counter name onto the Prometheus metric-name
/// alphabet: every character outside `[a-zA-Z0-9_]` becomes `_`.
fn prometheus_sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Formats a duration compactly (ns/µs/ms/s with 1 decimal).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Escapes and quotes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is process-wide state shared by every `#[test]`
    /// thread, so tests that enable it must hold this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_enabled_global<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.record_span("x", Duration::from_millis(1));
        r.add("c", 5);
        let snap = r.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn registry_accumulates_spans_and_counters() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("a", Duration::from_micros(10));
        r.record_span("a", Duration::from_micros(30));
        r.record_span("b", Duration::from_micros(5));
        r.add("hits", 2);
        r.add("hits", 3);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let a = &snap.spans[0];
        assert_eq!(a.path, "a");
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.min, Duration::from_micros(10));
        assert_eq!(a.max, Duration::from_micros(30));
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.counter("misses"), 0);
        r.reset();
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn spans_nest_hierarchically_per_thread() {
        with_enabled_global(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                }
                {
                    let _inner = span("inner");
                }
            }
            let _root = span("root");
            drop(_root);
            let snap = snapshot();
            let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
            assert_eq!(paths, vec!["outer", "outer/inner", "root"]);
            assert_eq!(snap.spans[1].count, 2);
            assert_eq!(snap.spans[1].name(), "inner");
        });
    }

    #[test]
    fn span_is_inert_when_disabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!enabled());
        {
            let _s = span("never");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn worker_threads_record_independent_roots() {
        with_enabled_global(|| {
            let _outer = span("outer");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _inner = span("inner");
                });
            });
            drop(_outer);
            let snap = snapshot();
            let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
            // The worker's TLS stack is empty, so its span is a root.
            assert_eq!(paths, vec!["inner", "outer"]);
        });
    }

    #[test]
    fn total_for_matches_segments_not_substrings() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("fit/encode_batch", Duration::from_micros(7));
        r.record_span("fit/encode_batch/encode", Duration::from_micros(3));
        r.record_span("encode", Duration::from_micros(2));
        let snap = r.snapshot();
        assert_eq!(snap.total_for("encode"), Duration::from_micros(5));
        assert_eq!(snap.total_for("encode_batch"), Duration::from_micros(7));
        assert_eq!(snap.total_for("absent"), Duration::ZERO);
    }

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(bucket_index(Duration::ZERO), 0);
        assert_eq!(bucket_index(Duration::from_nanos(1)), 1);
        assert_eq!(bucket_index(Duration::from_nanos(2)), 2);
        assert_eq!(bucket_index(Duration::from_nanos(3)), 2);
        assert_eq!(bucket_index(Duration::from_nanos(1024)), 11);
        assert_eq!(bucket_index(Duration::from_secs(3600)), N_BUCKETS - 1);
        assert_eq!(bucket_upper_ns(2), 3);
        assert_eq!(bucket_upper_ns(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn json_output_is_well_formed_and_complete() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("fit/encode", Duration::from_micros(12));
        r.record_span("fit/encode", Duration::from_millis(1));
        r.add("samples", 60);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"path\": \"fit/encode\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"name\": \"samples\""));
        assert!(json.contains("\"value\": 60"));
        assert!(json.contains("\"le_ns\""));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn pretty_output_sorts_by_total_time() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("small", Duration::from_micros(1));
        r.record_span("big", Duration::from_millis(5));
        r.add("n", 3);
        let text = r.snapshot().to_pretty();
        let big = text.find("big").expect("big span listed");
        let small = text.find("small").expect("small span listed");
        assert!(big < small, "{text}");
        assert!(text.contains("counters:"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Registry::new().snapshot();
        assert!(snap.to_pretty().contains("(none)"));
        assert!(snap.to_json().contains("\"version\": 2"));
        assert!(snap.to_prometheus().is_empty());
    }

    #[test]
    fn quantiles_walk_cumulative_buckets_with_ceil_rank() {
        let r = Registry::new();
        r.set_enabled(true);
        for _ in 0..50 {
            r.record_span("q", Duration::from_nanos(10));
        }
        for _ in 0..45 {
            r.record_span("q", Duration::from_nanos(100));
        }
        for _ in 0..5 {
            r.record_span("q", Duration::from_nanos(1000));
        }
        let snap = r.snapshot();
        let s = &snap.spans[0];
        // rank 50 lands in the 10 ns bucket (upper 2^4-1 = 15).
        assert_eq!(s.quantile_ns(0.50), 15);
        // rank 95 lands in the 100 ns bucket (upper 2^7-1 = 127).
        assert_eq!(s.quantile_ns(0.95), 127);
        // rank 99 lands in the 1000 ns bucket (upper 1023, clamped to
        // the observed max of 1000).
        assert_eq!(s.quantile_ns(0.99), 1000);
        assert_eq!(s.quantile_ns(1.0), 1000);
        // A single observation clamps exactly to itself.
        r.record_span("one", Duration::from_nanos(777));
        let snap = r.snapshot();
        let one = snap.spans.iter().find(|s| s.path == "one").unwrap();
        assert_eq!(one.quantile_ns(0.50), 777);
        assert_eq!(one.quantile_ns(0.99), 777);
        // Empty stats report zero.
        let empty = SpanStats {
            path: "e".into(),
            count: 0,
            total: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
            buckets: [0; N_BUCKETS],
        };
        assert_eq!(empty.quantile_ns(0.99), 0);
    }

    #[test]
    fn cardinality_caps_drop_overflow_names() {
        let r = Registry::new();
        r.set_enabled(true);
        for i in 0..MAX_COUNTER_NAMES + 10 {
            r.add(&format!("c{i:05}"), 1);
        }
        for i in 0..MAX_SPAN_PATHS + 7 {
            r.record_span(&format!("s{i:05}"), Duration::from_nanos(1));
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), MAX_SPAN_PATHS);
        // The cap plus the synthetic dropped-names counter itself.
        assert_eq!(snap.counters.len(), MAX_COUNTER_NAMES + 1);
        assert_eq!(snap.counter(DROPPED_NAMES_COUNTER), 17);
        // Existing names keep recording after the cap is reached.
        r.add("c00000", 4);
        r.record_span("s00000", Duration::from_nanos(9));
        let snap = r.snapshot();
        assert_eq!(snap.counter("c00000"), 5);
        assert_eq!(snap.spans[0].count, 2);
        // Counters stay sorted even with the synthetic entry inserted.
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // Reset clears the drop tally with everything else.
        r.reset();
        assert_eq!(r.snapshot().counter(DROPPED_NAMES_COUNTER), 0);
    }

    #[test]
    fn concurrent_recording_keeps_exact_totals() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let r = Registry::new();
        r.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        r.record_span("stress", Duration::from_nanos(3));
                        r.add("stress.count", 2);
                    }
                });
            }
        });
        let snap = r.snapshot();
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(snap.spans[0].count, total);
        assert_eq!(snap.spans[0].total, Duration::from_nanos(3 * total));
        assert_eq!(
            snap.spans[0].buckets[bucket_index(Duration::from_nanos(3))],
            total
        );
        assert_eq!(snap.counter("stress.count"), 2 * total);
        assert_eq!(snap.counter(DROPPED_NAMES_COUNTER), 0);
    }

    #[test]
    fn concurrent_span_guards_keep_exact_totals_in_the_global() {
        with_enabled_global(|| {
            const THREADS: usize = 4;
            const PER_THREAD: usize = 250;
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    scope.spawn(|| {
                        for _ in 0..PER_THREAD {
                            let _g = span("worker_stage");
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.total_for("worker_stage"), snap.spans[0].total);
            assert_eq!(snap.spans[0].count, (THREADS * PER_THREAD) as u64);
        });
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sanitized() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("serve/queue_wait", Duration::from_nanos(10));
        r.record_span("serve/queue_wait", Duration::from_nanos(100));
        r.record_span("serve/queue_wait", Duration::from_secs(4000)); // top bucket
        r.add("serve.requests", 7);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE lookhd_span_serve_queue_wait_ns histogram"));
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_bucket{le=\"15\"} 1"));
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_bucket{le=\"127\"} 2"));
        // The clamp bucket has no finite upper; it only appears as +Inf.
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_count 3"));
        assert!(text.contains("# TYPE lookhd_serve_requests counter"));
        assert!(text.contains("lookhd_serve_requests 7"));
        assert!(!text.contains("le=\"18446744073709551615\""));
    }

    #[test]
    fn durations_format_human_readably() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
