//! Std-only observability layer: hierarchical spans, counters, and
//! duration histograms behind a sharded, windowed, dimensional
//! process-global registry.
//!
//! The ROADMAP's serving ambitions need stage-level cost accounting — the
//! paper's Fig. 2 breakdown (encode vs train-add vs associative search) as
//! a *measured* artifact of every run, not a one-off experiment — without
//! the telemetry layer itself becoming the cross-thread serialization
//! point. This crate provides that accounting with zero external
//! dependencies:
//!
//! * **Spans** — scope-guard timers ([`span`]) that nest hierarchically
//!   per thread: a span opened while another is active on the same thread
//!   records under `parent/child`. Each distinct path aggregates a count,
//!   total/min/max, a fixed power-of-two-nanosecond histogram, a rolling
//!   window ring, and tail exemplars.
//! * **Counters** — monotonic `u64` counters ([`counter`]).
//! * **Raw durations** — [`record`] files a duration under an explicit
//!   path, ignoring the thread's span stack; the execution engine uses it
//!   to fold per-shard timings into the same registry. [`record_traced`]
//!   additionally tags the observation with a trace id so tail-bucket
//!   hits surface as exemplars.
//! * **Dimensions** — [`intern_counter`]/[`intern_span`] accept a small
//!   sorted label set (`reactor="0"`, `model_version="2"`, …) and return
//!   a copyable id; [`counter_id`]/[`record_id`] then record with **no
//!   allocation, no hashing, and no shared lock**. Cardinality is
//!   bounded per name ([`MAX_LABEL_SETS_PER_NAME`]) and globally
//!   ([`MAX_SPAN_PATHS`], [`MAX_COUNTER_NAMES`]); overflow is dropped
//!   and tallied in [`DROPPED_NAMES_COUNTER`].
//!
//! ## Cost model
//!
//! The registry is **disabled by default**. Every instrumentation entry
//! point first checks one relaxed atomic load and returns immediately when
//! disabled, so instrumented hot paths (per-sample encode, per-query
//! predict) cost one predictable branch. When enabled, a record takes the
//! calling thread's **own lock stripe** (threads are assigned one of
//! [`N_SHARDS`] stripes round-robin, see [`shard`](self)); with up to
//! `N_SHARDS` recording threads the mutex is uncontended and a record is
//! an integer-indexed cell update — no map lookup, no allocation. The
//! string-keyed entry points ([`counter`], [`record`], [`span`]) resolve
//! names through a thread-local cache, so they too are allocation-free
//! in steady state; pre-interned ids skip even that.
//!
//! Worker threads spawned by `lookhd-engine` start with an empty span
//! stack, so per-sample spans executed on workers record under their own
//! root (e.g. `encode`) rather than under the dispatching span (e.g.
//! `fit/encode_batch/encode`). Consumers should therefore match stage
//! names by path *segment*, not by exact path (see
//! [`Snapshot::total_for`]).
//!
//! ## Windows
//!
//! Every cell carries a rolling ring of [`WINDOW_SLOTS`] ×
//! [`WINDOW_SLOT_SECS`]-second slots (see [`window`]). Snapshots fold the
//! ring into last-[`WINDOW_SHORT_SECS`]-s and last-[`WINDOW_LONG_SECS`]-s
//! aggregates: windowed rates for counters, windowed rate + p50/p95/p99
//! for spans — the inputs for burn-rate SLO evaluation, alongside the
//! exact cumulative stats.
//!
//! ## Emitters
//!
//! [`Snapshot::to_json`] renders the deterministic JSON document written
//! by the CLI's `--metrics` flag (schema documented on the method);
//! [`Snapshot::to_pretty`] renders an aligned text table for humans;
//! [`Snapshot::to_prometheus`] renders Prometheus text exposition with
//! real labels and OpenMetrics exemplars for live scraping (the serve
//! admin endpoint).
//!
//! ## Tracing
//!
//! The [`trace`] module is the per-request complement to this aggregate
//! registry: a bounded, lock-striped ring of begin/end events carrying
//! propagated trace ids, exportable as Chrome trace-event JSON. Span
//! exemplars captured here resolve against that export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

mod shard;
mod window;

pub use shard::{Exemplar, N_EXEMPLARS, N_SHARDS};
pub use window::{
    set_window_epoch_for_test, WindowAgg, WINDOW_LONG_SECS, WINDOW_SHORT_SECS, WINDOW_SLOTS,
    WINDOW_SLOT_SECS,
};

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use shard::{SeqExemplar, Shard};
use window::SpanWinFold;

/// Number of histogram buckets. Bucket `i` holds durations whose
/// nanosecond count has bit-length `i` (i.e. `2^(i-1) ≤ ns < 2^i`;
/// bucket 0 holds exact zeros). 40 buckets span 1 ns to ~9 minutes;
/// longer durations clamp into the last bucket.
pub const N_BUCKETS: usize = 40;

/// Separator between nested span names in a recorded path.
pub const PATH_SEPARATOR: char = '/';

/// Most distinct span keys (path + label set) a registry will hold.
/// Callers that interpolate unbounded values into span names (request
/// ids, user input) can no longer grow the map without limit:
/// observations for keys beyond the cap are dropped and tallied in the
/// [`DROPPED_NAMES_COUNTER`] counter instead of allocating.
pub const MAX_SPAN_PATHS: usize = 1024;

/// Most distinct counter keys (name + label set) a registry will hold
/// (see [`MAX_SPAN_PATHS`]).
pub const MAX_COUNTER_NAMES: usize = 1024;

/// Most distinct *label sets* one metric name will hold. A labeled
/// dimension with unbounded values (e.g. a per-class counter on a
/// model with thousands of classes) exhausts only its own name's label
/// space — later, unrelated metrics still intern fine.
pub const MAX_LABEL_SETS_PER_NAME: usize = 256;

/// Counter name under which dropped-by-cardinality-cap observations are
/// reported in snapshots.
pub const DROPPED_NAMES_COUNTER: &str = "obs.dropped_names";

thread_local! {
    /// The calling thread's active span path ("a/b/c" while spans a, b, c
    /// are open). Guards push on creation and truncate back on drop.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };

    /// Per-thread name → id cache for the string-keyed global entry
    /// points, invalidated wholesale when the global registry resets.
    static NAME_CACHE: RefCell<NameCache> = RefCell::new(NameCache::default());
}

/// Bumped by [`Registry::reset`] so thread-local name caches drop ids
/// interned before the reset.
static GENERATION: AtomicU64 = AtomicU64::new(1);

#[derive(Default)]
struct NameCache {
    generation: u64,
    counters: HashMap<String, u32>,
    spans: HashMap<String, u32>,
}

/// Raw id value marking a key dropped by a cardinality cap.
const INVALID_ID: u32 = u32::MAX;

/// Pre-interned handle to one counter (name + label set). Obtained from
/// [`intern_counter`]; recording through it ([`counter_id`]) allocates
/// nothing and takes only the calling thread's own lock stripe.
///
/// Ids are registry-specific and are invalidated by [`Registry::reset`];
/// re-intern after a reset (resets are a test/CLI-boundary affair, not
/// something a live server does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

impl MetricId {
    /// Handle for a key dropped by a cardinality cap: recording through
    /// it only tallies [`DROPPED_NAMES_COUNTER`].
    pub const INVALID: Self = Self(INVALID_ID);
}

/// Pre-interned handle to one span key (path + label set); the span
/// counterpart of [`MetricId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// See [`MetricId::INVALID`].
    pub const INVALID: Self = Self(INVALID_ID);
}

/// One interned metric identity: name plus sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        Self {
            name: name.to_owned(),
            labels,
        }
    }
}

/// Key → id table for one metric kind. Interning is the only place the
/// registry ever allocates or takes a shared lock; it happens once per
/// distinct key (at startup / model swap / first use of a name), never
/// per record.
#[derive(Debug)]
struct Interner {
    keys: Vec<MetricKey>,
    ids: BTreeMap<MetricKey, u32>,
    /// Label sets interned per name (unlabeled keys don't count).
    label_sets: BTreeMap<String, u32>,
    cap: usize,
}

impl Interner {
    const fn new(cap: usize) -> Self {
        Self {
            keys: Vec::new(),
            ids: BTreeMap::new(),
            label_sets: BTreeMap::new(),
            cap,
        }
    }

    fn intern(&mut self, name: &str, labels: &[(&str, &str)]) -> u32 {
        let key = MetricKey::new(name, labels);
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        if self.keys.len() >= self.cap {
            return INVALID_ID;
        }
        if !key.labels.is_empty() {
            let per_name = self.label_sets.entry(key.name.clone()).or_insert(0);
            if *per_name as usize >= MAX_LABEL_SETS_PER_NAME {
                return INVALID_ID;
            }
            *per_name += 1;
        }
        let id = self.keys.len() as u32;
        self.keys.push(key.clone());
        self.ids.insert(key, id);
        id
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.ids.clear();
        self.label_sets.clear();
    }
}

/// A metrics registry: named span statistics plus named counters, held
/// in [`N_SHARDS`] lock stripes behind pre-interned integer ids.
///
/// All methods are thread-safe. The process-global instance behind
/// [`global`] is what the free-function API ([`span`], [`counter`],
/// [`record`], [`snapshot`]) operates on.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    /// Observations dropped because a cardinality cap was hit.
    dropped: AtomicU64,
    counter_intern: Mutex<Interner>,
    span_intern: Mutex<Interner>,
    shards: [Mutex<Shard>; N_SHARDS],
}

impl Registry {
    /// Creates a disabled, empty registry.
    pub const fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            counter_intern: Mutex::new(Interner::new(MAX_COUNTER_NAMES)),
            span_intern: Mutex::new(Interner::new(MAX_SPAN_PATHS)),
            shards: [const { Mutex::new(Shard::new()) }; N_SHARDS],
        }
    }

    /// Whether instrumentation records into this registry.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Existing data is kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Clears all recorded data *and* the intern tables (the enabled
    /// flag is kept). Previously obtained [`MetricId`]/[`SpanId`]
    /// handles are invalidated — re-intern after a reset.
    pub fn reset(&self) {
        // Take the intern locks first so concurrent string-keyed
        // records can't intern into a table we're about to clear.
        let mut counters = lock(&self.counter_intern);
        let mut spans = lock(&self.span_intern);
        counters.clear();
        spans.clear();
        for shard in &self.shards {
            lock(shard).clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
        GENERATION.fetch_add(1, Ordering::Relaxed);
    }

    /// Interns a counter key, returning a copyable allocation-free
    /// recording handle. Idempotent; caps return [`MetricId::INVALID`].
    pub fn intern_counter(&self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId(lock(&self.counter_intern).intern(name, labels))
    }

    /// Interns a span key (see [`Registry::intern_counter`]).
    pub fn intern_span(&self, path: &str, labels: &[(&str, &str)]) -> SpanId {
        SpanId(lock(&self.span_intern).intern(path, labels))
    }

    /// Adds `delta` to the counter behind a pre-interned id. No-op while
    /// disabled; an [`MetricId::INVALID`] id tallies one drop.
    pub fn add_id(&self, id: MetricId, delta: u64) {
        if !self.enabled() {
            return;
        }
        if id.0 == INVALID_ID {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let epoch = window::now_epoch();
        lock(&self.shards[shard::shard_index()])
            .counter_cell(id.0 as usize)
            .add(delta, epoch);
    }

    /// Records one duration under a pre-interned span id. No-op while
    /// disabled; an [`SpanId::INVALID`] id tallies one drop.
    pub fn record_id(&self, id: SpanId, d: Duration) {
        self.record_id_traced(id, d, 0);
    }

    /// Like [`Registry::record_id`], additionally tagging the
    /// observation with a trace id (0 = untraced) so tail-bucket hits
    /// are kept as exemplars.
    pub fn record_id_traced(&self, id: SpanId, d: Duration, trace_id: u64) {
        if !self.enabled() {
            return;
        }
        if id.0 == INVALID_ID {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let epoch = window::now_epoch();
        lock(&self.shards[shard::shard_index()])
            .span_cell(id.0 as usize)
            .observe(d, trace_id, epoch);
    }

    /// Adds `delta` to the monotonic counter `name` (string-keyed form:
    /// interns on first use). No-op while disabled.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled() {
            return;
        }
        let id = self.intern_counter(name, &[]);
        self.add_id(id, delta);
    }

    /// Records one duration observation under `path`, bypassing the
    /// calling thread's span stack (string-keyed form). No-op while
    /// disabled.
    pub fn record_span(&self, path: &str, d: Duration) {
        if !self.enabled() {
            return;
        }
        let id = self.intern_span(path, &[]);
        self.record_id_traced(id, d, 0);
    }

    /// A point-in-time copy of every span and counter, sorted by
    /// (name, labels). Observations dropped by the cardinality caps
    /// surface as the [`DROPPED_NAMES_COUNTER`] counter.
    ///
    /// Shards are locked one at a time, so writers are never blocked
    /// for the whole fold; each *cell* is read atomically (its shard
    /// lock is held while copying), so windowed aggregates are never
    /// torn, but two different metrics may reflect instants a few
    /// microseconds apart.
    pub fn snapshot(&self) -> Snapshot {
        let now = window::now_epoch();
        let counter_keys: Vec<MetricKey> = lock(&self.counter_intern).keys.clone();
        let span_keys: Vec<MetricKey> = lock(&self.span_intern).keys.clone();

        let mut counter_merge: Vec<Option<CounterMerge>> = Vec::new();
        counter_merge.resize_with(counter_keys.len(), || None);
        let mut span_merge: Vec<Option<Box<SpanMerge>>> = Vec::new();
        span_merge.resize_with(span_keys.len(), || None);

        for shard in &self.shards {
            let shard = lock(shard);
            for (id, cell) in shard.counters.iter().enumerate() {
                let Some(cell) = cell else { continue };
                if id >= counter_merge.len() {
                    continue; // racing intern after the key copy
                }
                let (w10, w60) = cell.win.fold(now);
                let m = counter_merge[id].get_or_insert_with(CounterMerge::default);
                m.value += cell.value;
                m.w10 += w10;
                m.w60 += w60;
            }
            for (id, cell) in shard.spans.iter().enumerate() {
                let Some(cell) = cell else { continue };
                if id >= span_merge.len() {
                    continue;
                }
                let m = span_merge[id].get_or_insert_with(|| Box::new(SpanMerge::new()));
                m.count += cell.count;
                m.total += cell.total;
                m.min = m.min.min(cell.min);
                m.max = m.max.max(cell.max);
                for (a, &b) in m.buckets.iter_mut().zip(&cell.buckets) {
                    *a += b;
                }
                let (w10, w60) = cell.win.fold(now);
                m.w10.merge(&w10);
                m.w60.merge(&w60);
                m.exemplars.extend(cell.exemplars().copied());
            }
        }

        // Deterministic order: sort ids by their (name, labels) key.
        let mut span_order: Vec<usize> = (0..span_keys.len()).collect();
        span_order.sort_by(|&a, &b| span_keys[a].cmp(&span_keys[b]));
        let mut counter_order: Vec<usize> = (0..counter_keys.len()).collect();
        counter_order.sort_by(|&a, &b| counter_keys[a].cmp(&counter_keys[b]));

        let spans: Vec<SpanStats> = span_order
            .into_iter()
            .filter_map(|id| {
                let m = span_merge[id].take()?;
                let key = &span_keys[id];
                let min_ns = duration_ns(m.min);
                let max_ns = duration_ns(m.max);
                let mut exemplars = m.exemplars;
                exemplars.sort_by_key(|e| std::cmp::Reverse(e.seq));
                exemplars.truncate(N_EXEMPLARS);
                Some(SpanStats {
                    path: key.name.clone(),
                    labels: key.labels.clone(),
                    count: m.count,
                    total: m.total,
                    min: if m.count == 0 { Duration::ZERO } else { m.min },
                    max: m.max,
                    buckets: m.buckets,
                    w10: window_agg(&m.w10, WINDOW_SHORT_SECS, min_ns, max_ns),
                    w60: window_agg(&m.w60, WINDOW_LONG_SECS, min_ns, max_ns),
                    exemplars: exemplars.into_iter().map(|e| e.exemplar).collect(),
                })
            })
            .collect();

        let mut counters: Vec<CounterStats> = counter_order
            .into_iter()
            .filter_map(|id| {
                let m = counter_merge[id].take()?;
                let key = &counter_keys[id];
                Some(CounterStats {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: m.value,
                    w10: m.w10,
                    w60: m.w60,
                })
            })
            .collect();

        let dropped = self.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            match counters
                .iter_mut()
                .find(|c| c.name == DROPPED_NAMES_COUNTER && c.labels.is_empty())
            {
                Some(c) => c.value += dropped,
                None => {
                    counters.push(CounterStats {
                        name: DROPPED_NAMES_COUNTER.to_owned(),
                        labels: Vec::new(),
                        value: dropped,
                        w10: 0,
                        w60: 0,
                    });
                    counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
                }
            }
        }

        Snapshot { spans, counters }
    }
}

/// Cross-shard merge accumulator for one counter id.
#[derive(Debug, Default)]
struct CounterMerge {
    value: u64,
    w10: u64,
    w60: u64,
}

/// Cross-shard merge accumulator for one span id.
#[derive(Debug)]
struct SpanMerge {
    count: u64,
    total: Duration,
    min: Duration,
    max: Duration,
    buckets: [u64; N_BUCKETS],
    w10: SpanWinFold,
    w60: SpanWinFold,
    exemplars: Vec<SeqExemplar>,
}

impl SpanMerge {
    fn new() -> Self {
        Self {
            count: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
            buckets: [0; N_BUCKETS],
            w10: SpanWinFold::default(),
            w60: SpanWinFold::default(),
            exemplars: Vec::new(),
        }
    }
}

/// Builds the public windowed aggregate from a folded window.
fn window_agg(fold: &SpanWinFold, secs: u64, min_ns: u64, max_ns: u64) -> WindowAgg {
    WindowAgg {
        count: fold.count,
        total_ns: fold.total_ns,
        p50_ns: quantile_from_buckets(&fold.buckets, fold.count, 0.50, min_ns, max_ns),
        p95_ns: quantile_from_buckets(&fold.buckets, fold.count, 0.95, min_ns, max_ns),
        p99_ns: quantile_from_buckets(&fold.buckets, fold.count, 0.99, min_ns, max_ns),
        secs,
    }
}

/// Ceil-rank quantile over a power-of-two histogram, clamped into
/// `[min_ns, max_ns]` (see [`SpanStats::quantile_ns`] for the
/// convention). Returns 0 when `count` is 0.
fn quantile_from_buckets(
    buckets: &[u64; N_BUCKETS],
    count: u64,
    p: f64,
    min_ns: u64,
    max_ns: u64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_ns(i).clamp(min_ns, max_ns);
        }
    }
    max_ns
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The histogram bucket a duration falls into (bit length of its
/// nanosecond count, clamped to the last bucket).
pub fn bucket_index(d: Duration) -> usize {
    let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
    let bits = (u64::BITS - ns.leading_zeros()) as usize;
    bits.min(N_BUCKETS - 1)
}

/// Inclusive nanosecond upper bound of histogram bucket `i`.
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-global registry used by the free-function API.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Whether the global registry is recording.
pub fn enabled() -> bool {
    GLOBAL.enabled()
}

/// Enables or disables recording into the global registry.
pub fn set_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

/// Clears the global registry's recorded data and intern tables
/// (invalidating previously interned ids — see [`Registry::reset`]).
pub fn reset() {
    GLOBAL.reset();
}

/// Interns a counter key in the global registry (see
/// [`Registry::intern_counter`]).
pub fn intern_counter(name: &str, labels: &[(&str, &str)]) -> MetricId {
    GLOBAL.intern_counter(name, labels)
}

/// Interns a span key in the global registry (see
/// [`Registry::intern_span`]).
pub fn intern_span(path: &str, labels: &[(&str, &str)]) -> SpanId {
    GLOBAL.intern_span(path, labels)
}

/// Adds `delta` to a pre-interned global counter: the zero-allocation,
/// stripe-local hot path.
pub fn counter_id(id: MetricId, delta: u64) {
    GLOBAL.add_id(id, delta);
}

/// Records a duration under a pre-interned global span id.
pub fn record_id(id: SpanId, d: Duration) {
    GLOBAL.record_id(id, d);
}

/// Records a duration under a pre-interned global span id, tagged with
/// a trace id (0 = untraced) for tail-exemplar capture.
pub fn record_id_traced(id: SpanId, d: Duration, trace_id: u64) {
    GLOBAL.record_id_traced(id, d, trace_id);
}

/// Resolves `name` to a counter id through the calling thread's cache
/// (allocation-free on hit; interns on miss).
fn cached_counter_id(name: &str) -> MetricId {
    NAME_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        if cache.generation != generation {
            cache.generation = generation;
            cache.counters.clear();
            cache.spans.clear();
        }
        if let Some(&id) = cache.counters.get(name) {
            return MetricId(id);
        }
        let id = GLOBAL.intern_counter(name, &[]);
        cache.counters.insert(name.to_owned(), id.0);
        id
    })
}

/// Span-path counterpart of [`cached_counter_id`].
fn cached_span_id(path: &str) -> SpanId {
    NAME_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        if cache.generation != generation {
            cache.generation = generation;
            cache.counters.clear();
            cache.spans.clear();
        }
        if let Some(&id) = cache.spans.get(path) {
            return SpanId(id);
        }
        let id = GLOBAL.intern_span(path, &[]);
        cache.spans.insert(path.to_owned(), id.0);
        id
    })
}

/// Adds `delta` to global counter `name` (one atomic load when
/// disabled; thread-cached name resolution when enabled).
pub fn counter(name: &str, delta: u64) {
    if !GLOBAL.enabled() {
        return;
    }
    GLOBAL.add_id(cached_counter_id(name), delta);
}

/// Records a duration under an explicit `path` in the global registry,
/// independent of the calling thread's span stack.
pub fn record(path: &str, d: Duration) {
    record_traced(path, d, 0);
}

/// Like [`record`], additionally tagging the observation with a trace
/// id (0 = untraced) so tail-bucket hits surface as OpenMetrics
/// exemplars resolvable against the trace ring.
pub fn record_traced(path: &str, d: Duration, trace_id: u64) {
    if !GLOBAL.enabled() {
        return;
    }
    GLOBAL.record_id_traced(cached_span_id(path), d, trace_id);
}

/// A point-in-time copy of the global registry.
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

/// Opens a scope-guard span named `name` on the calling thread.
///
/// While the guard lives, further spans on the same thread nest under it
/// (`parent/child` paths). Dropping the guard records the elapsed time.
/// When the registry is disabled at open time the guard is inert — one
/// relaxed atomic load is the entire cost.
#[must_use = "a span records its duration when dropped"]
pub fn span(name: &str) -> SpanGuard {
    if !GLOBAL.enabled() {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    let prev_len = SPAN_PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev = p.len();
        if !p.is_empty() {
            p.push(PATH_SEPARATOR);
        }
        p.push_str(name);
        prev
    });
    SpanGuard {
        active: Some(ActiveSpan {
            started: Instant::now(),
            prev_len,
        }),
        _not_send: PhantomData,
    }
}

#[derive(Debug)]
struct ActiveSpan {
    started: Instant,
    prev_len: usize,
}

/// Scope guard returned by [`span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Guards edit a thread-local path stack, so they must be dropped on
    /// the thread that created them.
    _not_send: PhantomData<*mut ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.started.elapsed();
        SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            if GLOBAL.enabled() {
                GLOBAL.record_id_traced(cached_span_id(&p), elapsed, 0);
            }
            p.truncate(active.prev_len);
        });
    }
}

/// A duration's nanosecond count, saturated to `u64`.
pub(crate) fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Aggregated statistics of one span key in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Hierarchical path, e.g. `fit/counter_train`.
    pub path: String,
    /// Sorted label set (empty for undimensioned spans).
    pub labels: Vec<(String, String)>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observed durations.
    pub total: Duration,
    /// Smallest observation ([`Duration::ZERO`] when `count == 0`).
    pub min: Duration,
    /// Largest observation.
    pub max: Duration,
    /// Power-of-two-nanosecond histogram (see [`bucket_index`]).
    pub buckets: [u64; N_BUCKETS],
    /// Last-10-s windowed aggregate.
    pub w10: WindowAgg,
    /// Last-60-s windowed aggregate.
    pub w60: WindowAgg,
    /// Most recent tail exemplars, newest first (see [`Exemplar`]).
    pub exemplars: Vec<Exemplar>,
}

impl SpanStats {
    /// Mean observation duration (zero when nothing was recorded).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// The final path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path
            .rsplit(PATH_SEPARATOR)
            .next()
            .unwrap_or(&self.path)
    }

    /// Exact-rank quantile extracted from the power-of-two histogram, in
    /// nanoseconds.
    ///
    /// The rank is `max(1, ceil(p · count))` (the same ceil-rank
    /// convention as `loadgen`: p99 of 100 observations is the 99th in
    /// ascending order, never an earlier one). The returned value is the
    /// inclusive upper bound of the bucket holding that observation,
    /// clamped to the observed `[min, max]` — an upper bound on the true
    /// quantile that is tight to within the bucket's power-of-two width
    /// (< 2× relative error) and exact when the bucket holds the
    /// extremes. Returns 0 when nothing was recorded.
    pub fn quantile_ns(&self, p: f64) -> u64 {
        quantile_from_buckets(
            &self.buckets,
            self.count,
            p,
            duration_ns(self.min),
            duration_ns(self.max),
        )
    }
}

/// One counter entry in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStats {
    /// Counter name.
    pub name: String,
    /// Sorted label set (empty for undimensioned counters).
    pub labels: Vec<(String, String)>,
    /// Cumulative value since boot (or the last reset).
    pub value: u64,
    /// Amount added during the last [`WINDOW_SHORT_SECS`] seconds.
    pub w10: u64,
    /// Amount added during the last [`WINDOW_LONG_SECS`] seconds.
    pub w60: u64,
}

impl CounterStats {
    /// Mean additions per second over the short window.
    pub fn rate10(&self) -> f64 {
        self.w10 as f64 / WINDOW_SHORT_SECS as f64
    }

    /// Mean additions per second over the long window.
    pub fn rate60(&self) -> f64 {
        self.w60 as f64 / WINDOW_LONG_SECS as f64
    }
}

/// A point-in-time copy of a registry: spans and counters, sorted by
/// (name, labels).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Span statistics, sorted by (path, labels).
    pub spans: Vec<SpanStats>,
    /// Counter entries, sorted by (name, labels).
    pub counters: Vec<CounterStats>,
}

impl Snapshot {
    /// Sum of total durations over every span *named* `name` — i.e. whose
    /// final path segment equals it exactly, so `encode` matches
    /// `fit/encode_batch/encode` but neither `fit/encode_batch` nor a
    /// nested child of an `encode` span. This is the stage-attribution
    /// query: it folds the same logical stage recorded at different
    /// nesting depths (serial vs worker-thread execution) into one number
    /// without double-counting parents.
    pub fn total_for(&self, name: &str) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.name() == name)
            .map(|s| s.total)
            .sum()
    }

    /// Value of counter `name` summed across all of its label sets, 0
    /// when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of the counter with exactly this name and label set, 0 when
    /// absent. `labels` need not be pre-sorted.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort();
        self.counters
            .iter()
            .find(|c| {
                c.name == name
                    && c.labels.len() == want.len()
                    && c.labels
                        .iter()
                        .zip(&want)
                        .all(|((k, v), (wk, wv))| k == wk && v == wv)
            })
            .map_or(0, |c| c.value)
    }

    /// Renders the snapshot as one deterministic JSON document.
    ///
    /// Schema (`version` 3 — version 2 plus `labels`, the `w10`/`w60`
    /// window objects, and `exemplars`):
    ///
    /// ```json
    /// {
    ///   "version": 3,
    ///   "window": {"slot_secs": 2, "short_secs": 10, "long_secs": 60},
    ///   "spans": [
    ///     {
    ///       "path": "serve/request",
    ///       "labels": {},
    ///       "count": 1,
    ///       "total_ns": 1234567,
    ///       "min_ns": 1234567,
    ///       "max_ns": 1234567,
    ///       "mean_ns": 1234567,
    ///       "p50_ns": 1234567,
    ///       "p95_ns": 1234567,
    ///       "p99_ns": 1234567,
    ///       "w10": {"count": 1, "total_ns": 1234567, "p50_ns": 1234567,
    ///               "p95_ns": 1234567, "p99_ns": 1234567,
    ///               "rate_per_sec": 0.100},
    ///       "w60": {"count": 1, "total_ns": 1234567, "p50_ns": 1234567,
    ///               "p95_ns": 1234567, "p99_ns": 1234567,
    ///               "rate_per_sec": 0.017},
    ///       "exemplars": [{"trace_id": "0x2a", "value_ns": 1234567}],
    ///       "buckets": [ { "le_ns": 2097151, "count": 1 } ]
    ///     }
    ///   ],
    ///   "counters": [
    ///     { "name": "encode.samples", "labels": {}, "value": 60,
    ///       "w10": 60, "w60": 60 }
    ///   ]
    /// }
    /// ```
    ///
    /// The cumulative quantile fields keep their v2 positions (before
    /// the window objects), so consumers scanning for the first
    /// `p50_ns` after a path anchor keep reading cumulative values.
    /// Only non-empty histogram buckets are emitted; `le_ns` is the
    /// bucket's inclusive nanosecond upper bound. Span entries are
    /// sorted by (path, labels), counters by (name, labels).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 320 * self.spans.len());
        let _ = write!(
            out,
            "{{\n  \"version\": 3,\n  \"window\": {{\"slot_secs\": {WINDOW_SLOT_SECS}, \"short_secs\": {WINDOW_SHORT_SECS}, \"long_secs\": {WINDOW_LONG_SECS}}},\n  \"spans\": ["
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": {}, \"labels\": {}, \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, ",
                json_string(&s.path),
                json_labels(&s.labels),
                s.count,
                s.total.as_nanos(),
                s.min.as_nanos(),
                s.max.as_nanos(),
                s.mean().as_nanos(),
                s.quantile_ns(0.50),
                s.quantile_ns(0.95),
                s.quantile_ns(0.99),
            );
            for (tag, w) in [("w10", &s.w10), ("w60", &s.w60)] {
                let _ = write!(
                    out,
                    "\"{tag}\": {{\"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"rate_per_sec\": {:.3}}}, ",
                    w.count, w.total_ns, w.p50_ns, w.p95_ns, w.p99_ns, w.rate_per_sec(),
                );
            }
            out.push_str("\"exemplars\": [");
            for (j, e) in s.exemplars.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"trace_id\": \"0x{:x}\", \"value_ns\": {}}}",
                    e.trace_id, e.value_ns
                );
            }
            out.push_str("], \"buckets\": [");
            let mut first = true;
            for (b, &count) in s.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"le_ns\": {}, \"count\": {count}}}",
                    bucket_upper_ns(b)
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"labels\": {}, \"value\": {}, \"w10\": {}, \"w60\": {}}}",
                json_string(&c.name),
                json_labels(&c.labels),
                c.value,
                c.w10,
                c.w60,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders an aligned human-readable table, spans sorted by total
    /// time descending.
    pub fn to_pretty(&self) -> String {
        let mut spans: Vec<&SpanStats> = self.spans.iter().collect();
        spans.sort_by(|a, b| {
            b.total
                .cmp(&a.total)
                .then_with(|| (&a.path, &a.labels).cmp(&(&b.path, &b.labels)))
        });
        let span_names: Vec<String> = spans
            .iter()
            .map(|s| display_key(&s.path, &s.labels))
            .collect();
        let counter_names: Vec<String> = self
            .counters
            .iter()
            .map(|c| display_key(&c.name, &c.labels))
            .collect();
        let width = span_names
            .iter()
            .chain(counter_names.iter())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(4);
        let mut out = String::new();
        out.push_str("spans (by total time):\n");
        if spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for (s, name) in spans.iter().zip(&span_names) {
            let _ = writeln!(
                out,
                "  {:width$}  {:>8}x  total {:>10}  mean {:>10}  p50 {:>10}  p99 {:>10}  max {:>10}  10s {:>7.1}/s",
                name,
                s.count,
                fmt_duration(s.total),
                fmt_duration(s.mean()),
                fmt_duration(Duration::from_nanos(s.quantile_ns(0.50))),
                fmt_duration(Duration::from_nanos(s.quantile_ns(0.99))),
                fmt_duration(s.max),
                s.w10.rate_per_sec(),
            );
        }
        out.push_str("counters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for (c, name) in self.counters.iter().zip(&counter_names) {
            let _ = writeln!(out, "  {name:width$}  {}", c.value);
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (format version 0.0.4) with OpenMetrics-style exemplars, for
    /// live scraping.
    ///
    /// Name mapping (documented in DESIGN.md §11): every character
    /// outside `[a-zA-Z0-9_]` in a span path or counter name becomes
    /// `_`, counters are prefixed `lookhd_` and spans `lookhd_span_`
    /// with an `_ns` unit suffix, so `serve/queue_wait` exports as the
    /// histogram `lookhd_span_serve_queue_wait_ns`. Interned label sets
    /// are emitted as real Prometheus labels (`reactor="0"`,
    /// `model_version="2"`, …), sorted by key, with `le` last on bucket
    /// lines. Buckets are **cumulative** with integer-nanosecond `le`
    /// bounds (the power-of-two `2^i - 1` uppers; a deliberate deviation
    /// from the seconds-base-unit convention to keep every exported
    /// number an exact integer); only buckets holding observations are
    /// listed plus the mandatory `+Inf`. A bucket line containing a tail
    /// exemplar's value carries it OpenMetrics-style:
    /// `... # {trace_id="0x2a"} 1234567` — the trace id resolves in the
    /// `/trace.json` export. Output is deterministic: spans sorted by
    /// (path, labels), counters by (name, labels), fixed field order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.spans.len());
        let mut last_type = String::new();
        for s in &self.spans {
            let name = format!("lookhd_span_{}_ns", prometheus_sanitize(&s.path));
            if name != last_type {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_type.clone_from(&name);
            }
            let labels = prometheus_labels(&s.labels);
            // Newest exemplar per bucket (exemplars are newest-first).
            let mut by_bucket: BTreeMap<usize, &Exemplar> = BTreeMap::new();
            for e in &s.exemplars {
                by_bucket
                    .entry(bucket_index(Duration::from_nanos(e.value_ns)))
                    .or_insert(e);
            }
            let exemplar_str = |b: usize| -> String {
                by_bucket.get(&b).map_or_else(String::new, |e| {
                    format!(" # {{trace_id=\"0x{:x}\"}} {}", e.trace_id, e.value_ns)
                })
            };
            let mut cumulative = 0u64;
            for (b, &count) in s.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let upper = bucket_upper_ns(b);
                if upper == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{labels}le=\"{upper}\"}} {cumulative}{}",
                    exemplar_str(b)
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}le=\"+Inf\"}} {}{}",
                s.count,
                exemplar_str(N_BUCKETS - 1)
            );
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", labels.trim_end_matches(','))
            };
            let _ = writeln!(out, "{name}_sum{suffix} {}", s.total.as_nanos());
            let _ = writeln!(out, "{name}_count{suffix} {}", s.count);
        }
        for c in &self.counters {
            let metric = format!("lookhd_{}", prometheus_sanitize(&c.name));
            if metric != last_type {
                let _ = writeln!(out, "# TYPE {metric} counter");
                last_type.clone_from(&metric);
            }
            let labels = prometheus_labels(&c.labels);
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", labels.trim_end_matches(','))
            };
            let _ = writeln!(out, "{metric}{suffix} {}", c.value);
        }
        out
    }
}

/// `name{k="v"}` display form for the pretty table.
fn display_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Renders a label set as a JSON object with sorted keys.
fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::with_capacity(2 + 16 * labels.len());
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_string(k), json_string(v));
    }
    out.push('}');
    out
}

/// Renders a label set as `k="v",k2="v2",` (trailing comma so `le` can
/// append; callers trim it when `le` is absent). Values are escaped per
/// the Prometheus text format.
fn prometheus_labels(labels: &[(String, String)]) -> String {
    let mut out = String::with_capacity(16 * labels.len());
    for (k, v) in labels {
        let _ = write!(out, "{}=\"{}\",", prometheus_sanitize(k), {
            let mut escaped = String::with_capacity(v.len());
            for c in v.chars() {
                match c {
                    '\\' => escaped.push_str("\\\\"),
                    '"' => escaped.push_str("\\\""),
                    '\n' => escaped.push_str("\\n"),
                    c => escaped.push(c),
                }
            }
            escaped
        });
    }
    out
}

/// Maps an arbitrary span/counter name onto the Prometheus metric-name
/// alphabet: every character outside `[a-zA-Z0-9_]` becomes `_`.
fn prometheus_sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Formats a duration compactly (ns/µs/ms/s with 1 decimal).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Escapes and quotes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is process-wide state shared by every `#[test]`
    /// thread, so tests that enable it must hold this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_enabled_global<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.record_span("x", Duration::from_millis(1));
        r.add("c", 5);
        let snap = r.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn registry_accumulates_spans_and_counters() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("a", Duration::from_micros(10));
        r.record_span("a", Duration::from_micros(30));
        r.record_span("b", Duration::from_micros(5));
        r.add("hits", 2);
        r.add("hits", 3);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let a = &snap.spans[0];
        assert_eq!(a.path, "a");
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.min, Duration::from_micros(10));
        assert_eq!(a.max, Duration::from_micros(30));
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.counter("misses"), 0);
        r.reset();
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn interned_ids_record_without_the_string_path() {
        let r = Registry::new();
        r.set_enabled(true);
        let hits = r.intern_counter("hits", &[]);
        let stage = r.intern_span("stage", &[]);
        assert_eq!(hits, r.intern_counter("hits", &[]), "interning idempotent");
        r.add_id(hits, 3);
        r.record_id(stage, Duration::from_micros(4));
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), 3);
        assert_eq!(snap.spans[0].path, "stage");
        assert_eq!(snap.spans[0].count, 1);
    }

    #[test]
    fn labeled_metrics_fold_and_sum_across_label_sets() {
        let r = Registry::new();
        r.set_enabled(true);
        let c0 = r.intern_counter("serve.predicted", &[("class", "0")]);
        let c1 = r.intern_counter("serve.predicted", &[("class", "1")]);
        r.add_id(c0, 7);
        r.add_id(c1, 5);
        let s0 = r.intern_span("serve/request", &[("reactor", "0")]);
        r.record_id(s0, Duration::from_micros(9));
        let snap = r.snapshot();
        assert_eq!(snap.counter("serve.predicted"), 12, "sums label sets");
        assert_eq!(
            snap.counter_labeled("serve.predicted", &[("class", "1")]),
            5
        );
        assert_eq!(
            snap.counter_labeled("serve.predicted", &[("class", "9")]),
            0
        );
        let labeled: Vec<_> = snap
            .counters
            .iter()
            .filter(|c| c.name == "serve.predicted")
            .collect();
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled[0].labels, vec![("class".into(), "0".into())]);
        assert_eq!(snap.spans[0].labels, vec![("reactor".into(), "0".into())]);
        // Label order at intern time is irrelevant: keys sort.
        let ab = r.intern_counter("x", &[("b", "2"), ("a", "1")]);
        assert_eq!(ab, r.intern_counter("x", &[("a", "1"), ("b", "2")]));
    }

    #[test]
    fn per_name_label_cap_leaves_other_names_alone() {
        let r = Registry::new();
        r.set_enabled(true);
        for i in 0..MAX_LABEL_SETS_PER_NAME + 10 {
            let id = r.intern_counter("big", &[("class", &i.to_string())]);
            r.add_id(id, 1);
        }
        // A *different* name still interns fine after "big" is full.
        let ok = r.intern_counter("later", &[]);
        assert_ne!(ok, MetricId::INVALID);
        r.add_id(ok, 1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("big"), MAX_LABEL_SETS_PER_NAME as u64);
        assert_eq!(snap.counter("later"), 1);
        assert_eq!(snap.counter(DROPPED_NAMES_COUNTER), 10);
    }

    #[test]
    fn windows_fold_with_pinned_epoch() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = Registry::new();
        r.set_enabled(true);
        set_window_epoch_for_test(1000);
        let c = r.intern_counter("reqs", &[]);
        let s = r.intern_span("stage", &[]);
        r.add_id(c, 4);
        r.record_id(s, Duration::from_nanos(100));
        r.record_id(s, Duration::from_nanos(1000));
        // 3 slots (6 s) later: still inside both windows.
        set_window_epoch_for_test(1003);
        r.add_id(c, 2);
        r.record_id(s, Duration::from_nanos(10));
        let snap = r.snapshot();
        let c = &snap.counters[0];
        assert_eq!((c.value, c.w10, c.w60), (6, 6, 6));
        let sp = &snap.spans[0];
        assert_eq!(sp.w10.count, 3);
        assert_eq!(sp.w10.total_ns, 1110);
        assert_eq!(sp.w10.secs, WINDOW_SHORT_SECS);
        assert_eq!(sp.w60.count, 3);
        // 7 slots (14 s) after the first burst: it ages out of w10.
        set_window_epoch_for_test(1007);
        let snap = r.snapshot();
        let c = &snap.counters[0];
        assert_eq!((c.value, c.w10, c.w60), (6, 2, 6));
        let sp = &snap.spans[0];
        assert_eq!(sp.w10.count, 1);
        // Windowed p99 over the remaining 10 ns observation clamps into
        // the cumulative [min, max].
        assert_eq!(sp.w10.p99_ns, 15);
        assert_eq!(sp.w60.count, 3);
        assert_eq!(sp.w60.p99_ns, 1000, "clamped to cumulative max");
        // 31 slots (62 s) later everything left the long window too.
        set_window_epoch_for_test(1034);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].w60, 0);
        assert_eq!(snap.spans[0].w60.count, 0);
        assert_eq!(snap.spans[0].count, 3, "cumulative stats never age");
        set_window_epoch_for_test(0);
    }

    #[test]
    fn exemplars_keep_newest_top_bucket_trace_ids() {
        let r = Registry::new();
        r.set_enabled(true);
        let s = r.intern_span("serve/request", &[]);
        // Tail values with trace ids; the 10 ns floor stays exemplar-free
        // once larger buckets exist.
        for i in 1..=6u64 {
            r.record_id_traced(s, Duration::from_micros(100 + i), 0x100 + i);
        }
        r.record_id_traced(s, Duration::from_nanos(10), 0xf00d);
        r.record_id(s, Duration::from_micros(200)); // untraced: not sampled
        let snap = r.snapshot();
        let ex = &snap.spans[0].exemplars;
        assert!(ex.len() <= N_EXEMPLARS);
        assert_eq!(ex.len(), N_EXEMPLARS);
        assert_eq!(ex[0].trace_id, 0x106, "newest first");
        assert!(ex.iter().all(|e| e.trace_id >= 0x103), "oldest evicted");
        assert!(ex.iter().all(|e| e.value_ns > 100_000), "tail buckets only");
        let prom = snap.to_prometheus();
        assert!(prom.contains("# {trace_id=\"0x106\"}"), "{prom}");
    }

    #[test]
    fn spans_nest_hierarchically_per_thread() {
        with_enabled_global(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                }
                {
                    let _inner = span("inner");
                }
            }
            let _root = span("root");
            drop(_root);
            let snap = snapshot();
            let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
            assert_eq!(paths, vec!["outer", "outer/inner", "root"]);
            assert_eq!(snap.spans[1].count, 2);
            assert_eq!(snap.spans[1].name(), "inner");
        });
    }

    #[test]
    fn span_is_inert_when_disabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!enabled());
        {
            let _s = span("never");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn worker_threads_record_independent_roots() {
        with_enabled_global(|| {
            let _outer = span("outer");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _inner = span("inner");
                });
            });
            drop(_outer);
            let snap = snapshot();
            let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
            // The worker's TLS stack is empty, so its span is a root.
            assert_eq!(paths, vec!["inner", "outer"]);
        });
    }

    #[test]
    fn total_for_matches_segments_not_substrings() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("fit/encode_batch", Duration::from_micros(7));
        r.record_span("fit/encode_batch/encode", Duration::from_micros(3));
        r.record_span("encode", Duration::from_micros(2));
        let snap = r.snapshot();
        assert_eq!(snap.total_for("encode"), Duration::from_micros(5));
        assert_eq!(snap.total_for("encode_batch"), Duration::from_micros(7));
        assert_eq!(snap.total_for("absent"), Duration::ZERO);
    }

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(bucket_index(Duration::ZERO), 0);
        assert_eq!(bucket_index(Duration::from_nanos(1)), 1);
        assert_eq!(bucket_index(Duration::from_nanos(2)), 2);
        assert_eq!(bucket_index(Duration::from_nanos(3)), 2);
        assert_eq!(bucket_index(Duration::from_nanos(1024)), 11);
        assert_eq!(bucket_index(Duration::from_secs(3600)), N_BUCKETS - 1);
        assert_eq!(bucket_upper_ns(2), 3);
        assert_eq!(bucket_upper_ns(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn json_output_is_well_formed_and_complete() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("fit/encode", Duration::from_micros(12));
        r.record_span("fit/encode", Duration::from_millis(1));
        r.add("samples", 60);
        let id = r.intern_counter("served", &[("model_version", "2")]);
        r.add_id(id, 1);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"version\": 3"));
        assert!(json.contains("\"window\": {\"slot_secs\": 2"));
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"w10\": {\"count\": 2"));
        assert!(json.contains("\"rate_per_sec\""));
        assert!(json.contains("\"exemplars\": []"));
        assert!(json.contains("\"path\": \"fit/encode\", \"labels\": {}"));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"name\": \"samples\""));
        assert!(json.contains("\"value\": 60"));
        assert!(json.contains("\"labels\": {\"model_version\": \"2\"}"));
        assert!(json.contains("\"le_ns\""));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The first p50_ns after a span's path anchor is the cumulative
        // one — loadgen's field scanner depends on this ordering.
        let anchor = json.find("\"path\": \"fit/encode\"").unwrap();
        let p50 = json[anchor..].find("\"p50_ns\"").unwrap();
        let w10 = json[anchor..].find("\"w10\"").unwrap();
        assert!(p50 < w10);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn pretty_output_sorts_by_total_time() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("small", Duration::from_micros(1));
        r.record_span("big", Duration::from_millis(5));
        r.add("n", 3);
        let id = r.intern_counter("tagged", &[("worker", "1")]);
        r.add_id(id, 9);
        let text = r.snapshot().to_pretty();
        let big = text.find("big").expect("big span listed");
        let small = text.find("small").expect("small span listed");
        assert!(big < small, "{text}");
        assert!(text.contains("counters:"));
        assert!(text.contains("tagged{worker=\"1\"}"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Registry::new().snapshot();
        assert!(snap.to_pretty().contains("(none)"));
        assert!(snap.to_json().contains("\"version\": 3"));
        assert!(snap.to_prometheus().is_empty());
    }

    #[test]
    fn quantiles_walk_cumulative_buckets_with_ceil_rank() {
        let r = Registry::new();
        r.set_enabled(true);
        for _ in 0..50 {
            r.record_span("q", Duration::from_nanos(10));
        }
        for _ in 0..45 {
            r.record_span("q", Duration::from_nanos(100));
        }
        for _ in 0..5 {
            r.record_span("q", Duration::from_nanos(1000));
        }
        let snap = r.snapshot();
        let s = &snap.spans[0];
        // rank 50 lands in the 10 ns bucket (upper 2^4-1 = 15).
        assert_eq!(s.quantile_ns(0.50), 15);
        // rank 95 lands in the 100 ns bucket (upper 2^7-1 = 127).
        assert_eq!(s.quantile_ns(0.95), 127);
        // rank 99 lands in the 1000 ns bucket (upper 1023, clamped to
        // the observed max of 1000).
        assert_eq!(s.quantile_ns(0.99), 1000);
        assert_eq!(s.quantile_ns(1.0), 1000);
        // A single observation clamps exactly to itself.
        r.record_span("one", Duration::from_nanos(777));
        let snap = r.snapshot();
        let one = snap.spans.iter().find(|s| s.path == "one").unwrap();
        assert_eq!(one.quantile_ns(0.50), 777);
        assert_eq!(one.quantile_ns(0.99), 777);
        // Empty stats report zero.
        let empty = SpanStats {
            path: "e".into(),
            labels: Vec::new(),
            count: 0,
            total: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
            buckets: [0; N_BUCKETS],
            w10: WindowAgg::default(),
            w60: WindowAgg::default(),
            exemplars: Vec::new(),
        };
        assert_eq!(empty.quantile_ns(0.99), 0);
    }

    #[test]
    fn cardinality_caps_drop_overflow_names() {
        let r = Registry::new();
        r.set_enabled(true);
        for i in 0..MAX_COUNTER_NAMES + 10 {
            r.add(&format!("c{i:05}"), 1);
        }
        for i in 0..MAX_SPAN_PATHS + 7 {
            r.record_span(&format!("s{i:05}"), Duration::from_nanos(1));
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), MAX_SPAN_PATHS);
        // The cap plus the synthetic dropped-names counter itself.
        assert_eq!(snap.counters.len(), MAX_COUNTER_NAMES + 1);
        assert_eq!(snap.counter(DROPPED_NAMES_COUNTER), 17);
        // Existing names keep recording after the cap is reached.
        r.add("c00000", 4);
        r.record_span("s00000", Duration::from_nanos(9));
        let snap = r.snapshot();
        assert_eq!(snap.counter("c00000"), 5);
        assert_eq!(snap.spans[0].count, 2);
        // Counters stay sorted even with the synthetic entry inserted.
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // Reset clears the drop tally with everything else.
        r.reset();
        assert_eq!(r.snapshot().counter(DROPPED_NAMES_COUNTER), 0);
    }

    #[test]
    fn concurrent_recording_keeps_exact_totals() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let r = Registry::new();
        r.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        r.record_span("stress", Duration::from_nanos(3));
                        r.add("stress.count", 2);
                    }
                });
            }
        });
        let snap = r.snapshot();
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(snap.spans[0].count, total);
        assert_eq!(snap.spans[0].total, Duration::from_nanos(3 * total));
        assert_eq!(
            snap.spans[0].buckets[bucket_index(Duration::from_nanos(3))],
            total
        );
        assert_eq!(snap.counter("stress.count"), 2 * total);
        assert_eq!(snap.counter(DROPPED_NAMES_COUNTER), 0);
    }

    #[test]
    fn concurrent_span_guards_keep_exact_totals_in_the_global() {
        with_enabled_global(|| {
            const THREADS: usize = 4;
            const PER_THREAD: usize = 250;
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    scope.spawn(|| {
                        for _ in 0..PER_THREAD {
                            let _g = span("worker_stage");
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.total_for("worker_stage"), snap.spans[0].total);
            assert_eq!(snap.spans[0].count, (THREADS * PER_THREAD) as u64);
        });
    }

    #[test]
    fn reset_invalidates_interned_ids_and_name_caches() {
        with_enabled_global(|| {
            counter("survivor", 1);
            let old = intern_counter("survivor", &[]);
            reset();
            set_enabled(true);
            // The thread cache re-interns after the generation bump
            // instead of recording through the stale id.
            counter("fresh", 2);
            counter("survivor", 3);
            let snap = snapshot();
            assert_eq!(snap.counter("fresh"), 2);
            assert_eq!(snap.counter("survivor"), 3);
            // The pre-reset id may now alias a different key; it is the
            // caller's contract not to reuse it. It must at least not
            // panic.
            counter_id(old, 1);
        });
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sanitized() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("serve/queue_wait", Duration::from_nanos(10));
        r.record_span("serve/queue_wait", Duration::from_nanos(100));
        r.record_span("serve/queue_wait", Duration::from_secs(4000)); // top bucket
        r.add("serve.requests", 7);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE lookhd_span_serve_queue_wait_ns histogram"));
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_bucket{le=\"15\"} 1"));
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_bucket{le=\"127\"} 2"));
        // The clamp bucket has no finite upper; it only appears as +Inf.
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lookhd_span_serve_queue_wait_ns_count 3"));
        assert!(text.contains("# TYPE lookhd_serve_requests counter"));
        assert!(text.contains("lookhd_serve_requests 7"));
        assert!(!text.contains("le=\"18446744073709551615\""));
    }

    #[test]
    fn prometheus_emits_real_labels() {
        let r = Registry::new();
        r.set_enabled(true);
        let c = r.intern_counter("serve.predicted", &[("class", "3")]);
        r.add_id(c, 11);
        let s = r.intern_span("serve/request", &[("reactor", "1"), ("model_version", "2")]);
        r.record_id(s, Duration::from_nanos(100));
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("lookhd_serve_predicted{class=\"3\"} 11"),
            "{text}"
        );
        // Label keys sorted, le last on bucket lines.
        assert!(
            text.contains(
                "lookhd_span_serve_request_ns_bucket{model_version=\"2\",reactor=\"1\",le=\"127\"} 1"
            ),
            "{text}"
        );
        assert!(text
            .contains("lookhd_span_serve_request_ns_count{model_version=\"2\",reactor=\"1\"} 1"));
        // One TYPE line per metric name even with several label sets.
        let c2 = r.intern_counter("serve.predicted", &[("class", "4")]);
        r.add_id(c2, 1);
        let text = r.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE lookhd_serve_predicted counter")
                .count(),
            1
        );
    }

    #[test]
    fn durations_format_human_readably() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
