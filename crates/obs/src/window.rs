//! Rolling time-window ring shared by every metric cell.
//!
//! Each span/counter cell carries a small ring of coarse time slots
//! ([`WINDOW_SLOTS`] × [`WINDOW_SLOT_SECS`] seconds). A record lands in
//! the slot addressed by the current *epoch* (seconds since process
//! start divided by the slot width); a slot whose stored epoch differs
//! from the current one is stale and is zeroed before accumulating, so
//! rotation needs no background thread — the writer that first touches
//! a recycled slot retires its old contents.
//!
//! Snapshots fold the slots whose epoch falls inside the last
//! [`WINDOW_SHORT_SECS`] / [`WINDOW_LONG_SECS`] seconds into windowed
//! aggregates (rates and quantiles). The newest slot is usually
//! partially filled, so windowed rates are a slight *under*-estimate —
//! bounded by one slot width — which is the right bias for burn-rate
//! alerting (no phantom spikes from extrapolation).
//!
//! The epoch clock is process-global (`OnceLock<Instant>`); tests pin it
//! with [`set_window_epoch_for_test`] to make window folds deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::N_BUCKETS;

/// Number of slots in every window ring. 32 × 2 s = 64 s of history,
/// enough to fold both the short and the long window with slack for the
/// partially-filled newest slot.
pub const WINDOW_SLOTS: usize = 32;

/// Width of one window slot in seconds.
pub const WINDOW_SLOT_SECS: u64 = 2;

/// Span of the short ("last 10 s") window in seconds.
pub const WINDOW_SHORT_SECS: u64 = 10;

/// Span of the long ("last 60 s") window in seconds.
pub const WINDOW_LONG_SECS: u64 = 60;

/// Slots folded into the short window.
const SHORT_SLOTS: u64 = WINDOW_SHORT_SECS / WINDOW_SLOT_SECS;

/// Slots folded into the long window.
const LONG_SLOTS: u64 = WINDOW_LONG_SECS / WINDOW_SLOT_SECS;

static EPOCH_START: OnceLock<Instant> = OnceLock::new();

/// Test override for the epoch clock (0 = use the real clock). Epochs
/// start at 1 so 0 can double as both "no override" here and "empty
/// slot" in the rings.
static EPOCH_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// The current window epoch: 1 + seconds-since-start / slot width.
/// Never 0 — rings use epoch 0 as the empty-slot sentinel.
pub(crate) fn now_epoch() -> u64 {
    let pinned = EPOCH_OVERRIDE.load(Ordering::Relaxed);
    if pinned != 0 {
        return pinned;
    }
    EPOCH_START.get_or_init(Instant::now).elapsed().as_secs() / WINDOW_SLOT_SECS + 1
}

/// Pins the window epoch clock for deterministic window tests
/// (`epoch >= 1`); pass 0 to restore the real clock. Not part of the
/// stable API.
#[doc(hidden)]
pub fn set_window_epoch_for_test(epoch: u64) {
    EPOCH_OVERRIDE.store(epoch, Ordering::Relaxed);
}

/// One counter window slot: the epoch it belongs to plus the value
/// accumulated during that slot.
#[derive(Debug, Clone, Copy, Default)]
struct CounterSlot {
    epoch: u64,
    value: u64,
}

/// Per-cell counter window ring.
#[derive(Debug, Clone)]
pub(crate) struct CounterWin {
    slots: [CounterSlot; WINDOW_SLOTS],
}

impl CounterWin {
    pub(crate) fn new() -> Self {
        Self {
            slots: [CounterSlot::default(); WINDOW_SLOTS],
        }
    }

    pub(crate) fn add(&mut self, epoch: u64, delta: u64) {
        let slot = &mut self.slots[(epoch as usize) % WINDOW_SLOTS];
        if slot.epoch != epoch {
            // Stale slot from a previous ring revolution: retire it.
            *slot = CounterSlot { epoch, value: 0 };
        }
        slot.value += delta;
    }

    /// Sums the slots inside the short and long windows ending at `now`.
    pub(crate) fn fold(&self, now: u64) -> (u64, u64) {
        let (mut short, mut long) = (0u64, 0u64);
        for slot in &self.slots {
            if slot.epoch == 0 || slot.epoch > now {
                continue;
            }
            let age = now - slot.epoch;
            if age < SHORT_SLOTS {
                short += slot.value;
            }
            if age < LONG_SLOTS {
                long += slot.value;
            }
        }
        (short, long)
    }
}

/// One span window slot: count, summed nanoseconds, and a compact
/// power-of-two histogram (u32 per bucket — 4 billion events per 2 s
/// slot is out of reach) for windowed quantiles.
#[derive(Debug, Clone, Copy)]
struct SpanSlot {
    epoch: u64,
    count: u64,
    total_ns: u64,
    buckets: [u32; N_BUCKETS],
}

impl SpanSlot {
    const EMPTY: Self = Self {
        epoch: 0,
        count: 0,
        total_ns: 0,
        buckets: [0; N_BUCKETS],
    };
}

/// Per-cell span window ring.
#[derive(Debug, Clone)]
pub(crate) struct SpanWin {
    slots: [SpanSlot; WINDOW_SLOTS],
}

/// A window's worth of span observations folded out of the ring (and,
/// at snapshot time, merged across shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpanWinFold {
    pub count: u64,
    pub total_ns: u64,
    pub buckets: [u64; N_BUCKETS],
}

impl Default for SpanWinFold {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl SpanWinFold {
    pub(crate) fn merge(&mut self, other: &SpanWinFold) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl SpanWin {
    pub(crate) fn new() -> Self {
        Self {
            slots: [SpanSlot::EMPTY; WINDOW_SLOTS],
        }
    }

    pub(crate) fn observe(&mut self, epoch: u64, bucket: usize, ns: u64) {
        let slot = &mut self.slots[(epoch as usize) % WINDOW_SLOTS];
        if slot.epoch != epoch {
            *slot = SpanSlot::EMPTY;
            slot.epoch = epoch;
        }
        slot.count += 1;
        slot.total_ns = slot.total_ns.saturating_add(ns);
        slot.buckets[bucket] += 1;
    }

    /// Folds the slots inside the short and long windows ending at `now`.
    pub(crate) fn fold(&self, now: u64) -> (SpanWinFold, SpanWinFold) {
        let mut short = SpanWinFold::default();
        let mut long = SpanWinFold::default();
        for slot in &self.slots {
            if slot.epoch == 0 || slot.epoch > now {
                continue;
            }
            let age = now - slot.epoch;
            if age >= LONG_SLOTS {
                continue;
            }
            long.count += slot.count;
            long.total_ns += slot.total_ns;
            for (a, &b) in long.buckets.iter_mut().zip(&slot.buckets) {
                *a += u64::from(b);
            }
            if age < SHORT_SLOTS {
                short.count += slot.count;
                short.total_ns += slot.total_ns;
                for (a, &b) in short.buckets.iter_mut().zip(&slot.buckets) {
                    *a += u64::from(b);
                }
            }
        }
        (short, long)
    }
}

/// Windowed aggregate of one span cell over one window, as surfaced in
/// a [`Snapshot`](crate::Snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowAgg {
    /// Observations inside the window.
    pub count: u64,
    /// Summed nanoseconds inside the window.
    pub total_ns: u64,
    /// Windowed p50 in nanoseconds (bucket-resolution upper bound,
    /// clamped to the cell's cumulative `[min, max]`).
    pub p50_ns: u64,
    /// Windowed p95 in nanoseconds.
    pub p95_ns: u64,
    /// Windowed p99 in nanoseconds.
    pub p99_ns: u64,
    /// Width of the window in seconds (10 or 60).
    pub secs: u64,
}

impl WindowAgg {
    /// Mean observations per second over the window (the newest slot is
    /// partially filled, so this slightly under-estimates — see module
    /// docs).
    pub fn rate_per_sec(&self) -> f64 {
        if self.secs == 0 {
            0.0
        } else {
            self.count as f64 / self.secs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ring_folds_short_and_long_windows() {
        let mut win = CounterWin::new();
        win.add(100, 5);
        win.add(102, 7); // 2 slots later: outside short at now=107
        win.add(107, 1);
        let (short, long) = win.fold(107);
        // ages: 7 (out of short), 5 (out of short: age >= 5), 0.
        assert_eq!(short, 1);
        assert_eq!(long, 13);
        let (short, long) = win.fold(103);
        // now=103: epochs 100 (age 3) and 102 (age 1) in short; 107 is
        // in the future and ignored.
        assert_eq!(short, 12);
        assert_eq!(long, 12);
    }

    #[test]
    fn stale_slots_are_retired_on_reuse() {
        let mut win = CounterWin::new();
        win.add(1, 10);
        // One full revolution later the same slot index is reused.
        win.add(1 + WINDOW_SLOTS as u64, 3);
        let (_, long) = win.fold(1 + WINDOW_SLOTS as u64);
        assert_eq!(long, 3, "old revolution's value must not leak");
    }

    #[test]
    fn span_ring_folds_counts_totals_and_buckets() {
        let mut win = SpanWin::new();
        win.observe(50, 4, 10);
        win.observe(50, 4, 12);
        win.observe(54, 7, 100);
        let (short, long) = win.fold(54);
        assert_eq!(short, {
            let mut want = SpanWinFold {
                count: 3,
                total_ns: 122,
                ..SpanWinFold::default()
            };
            want.buckets[4] = 2;
            want.buckets[7] = 1;
            want
        });
        assert_eq!(long.count, 3);
        let (short, _) = win.fold(60);
        // now=60: epoch 50 (age 10) and epoch 54 (age 6) both fall
        // outside the 5-slot short window.
        assert_eq!(short.count, 0);
    }

    #[test]
    fn epochs_start_at_one() {
        assert!(now_epoch() >= 1);
    }
}
