//! Bounded, lock-striped trace-event ring buffer with a Chrome
//! trace-event JSON exporter.
//!
//! Where the registry in the crate root aggregates (histograms and
//! counters with no per-request identity), this module records *events*:
//! begin/end pairs with a monotonic nanosecond timestamp, the recording
//! thread's id, and a caller-propagated 64-bit trace id. The serve path
//! stamps the client-supplied trace id onto every pipeline stage
//! (decode → queue wait → batch assembly → predict → encode), so one
//! request's journey through reader and worker threads can be followed
//! end to end in Perfetto or `chrome://tracing`.
//!
//! ## Cost model
//!
//! Tracing is **disabled by default** behind one relaxed atomic load,
//! exactly like the registry. When enabled, an event is one short
//! mutex-protected ring write; the ring is striped by thread id so
//! unrelated threads rarely contend. The ring is bounded: when full, the
//! **oldest events are overwritten** — recording never blocks on a
//! consumer and never allocates past the configured capacity.
//!
//! ## Export
//!
//! [`to_chrome_json`] renders the ring as a Chrome trace-event JSON
//! document (deterministic field order, std-only). Begin/end pairs are
//! emitted as *async* events (`"ph": "b"` / `"ph": "e"`) keyed by the
//! trace id, because one request's stages span multiple threads — async
//! events are the trace-event flavour that tolerates cross-thread pairing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of independently locked ring stripes. Events are striped by
/// recording thread, so up to this many threads record without
/// contending.
pub const N_STRIPES: usize = 8;

/// Default total event capacity across all stripes.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Smallest per-stripe capacity [`set_capacity`] will configure.
const MIN_STRIPE_CAPACITY: usize = 64;

/// Whether a [`TraceEvent`] opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The span begins at the event's timestamp.
    Begin,
    /// The span ends at the event's timestamp.
    End,
}

/// One recorded begin/end event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stage name (static so recording never allocates).
    pub name: &'static str,
    /// Caller-propagated trace id tying events of one request together.
    pub trace_id: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Whether the span begins or ends here.
    pub phase: Phase,
}

struct Stripe {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Configured capacity (0 = use [`DEFAULT_CAPACITY`] split evenly).
    cap: usize,
    /// Events overwritten because the stripe was full.
    dropped: u64,
}

impl Stripe {
    const fn new() -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            cap: 0,
            dropped: 0,
        }
    }

    fn capacity(&self) -> usize {
        if self.cap == 0 {
            DEFAULT_CAPACITY / N_STRIPES
        } else {
            self.cap
        }
    }

    fn push(&mut self, event: TraceEvent) {
        let cap = self.capacity();
        if self.buf.len() < cap {
            self.buf.push(event);
        } else {
            // Full: overwrite the oldest event in place. The hot path
            // never waits for a consumer and never grows the buffer.
            self.buf[self.head] = event;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Events in recording order (oldest first).
    fn ordered(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(&self.buf[..self.head])
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STRIPES: [Mutex<Stripe>; N_STRIPES] = [const { Mutex::new(Stripe::new()) }; N_STRIPES];
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Sequential per-thread id, assigned on first trace use.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn lock(i: usize) -> std::sync::MutexGuard<'static, Stripe> {
    STRIPES[i].lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether trace recording is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns trace recording on or off. Existing events are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every stripe (events, wrap state, and drop counts).
pub fn reset() {
    for i in 0..N_STRIPES {
        let mut stripe = lock(i);
        stripe.buf.clear();
        stripe.head = 0;
        stripe.dropped = 0;
    }
}

/// Reconfigures the **total** ring capacity (split evenly across
/// stripes, at least [`MIN_STRIPE_CAPACITY`](self) events each) and
/// clears the ring.
pub fn set_capacity(total: usize) {
    let per_stripe = (total / N_STRIPES).max(MIN_STRIPE_CAPACITY);
    for i in 0..N_STRIPES {
        let mut stripe = lock(i);
        stripe.buf = Vec::new();
        stripe.head = 0;
        stripe.cap = per_stripe;
        stripe.dropped = 0;
    }
}

/// Nanoseconds since the process-wide trace epoch (the first call wins
/// the epoch; all timestamps share it, whatever thread records them).
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The calling thread's small sequential trace id.
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// Records one event with an explicit timestamp (from [`now_ns`]) — the
/// serve path captures timestamps before the trace id is known (the
/// decode stage starts before the frame is parsed) and emits afterwards.
/// No-op while disabled.
pub fn emit_at(name: &'static str, trace_id: u64, phase: Phase, ts_ns: u64) {
    if !enabled() {
        return;
    }
    let tid = thread_id();
    let event = TraceEvent {
        name,
        trace_id,
        tid,
        ts_ns,
        phase,
    };
    lock((tid as usize) % N_STRIPES).push(event);
}

/// Records one event timestamped now. No-op while disabled.
pub fn emit(name: &'static str, trace_id: u64, phase: Phase) {
    if !enabled() {
        return;
    }
    emit_at(name, trace_id, phase, now_ns());
}

/// Records a complete begin/end pair from captured timestamps.
pub fn pair(name: &'static str, trace_id: u64, begin_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    emit_at(name, trace_id, Phase::Begin, begin_ns);
    emit_at(name, trace_id, Phase::End, end_ns);
}

/// Opens a scope guard that emits a begin event now and the matching end
/// event on drop. Inert while disabled.
#[must_use = "a trace span emits its end event when dropped"]
pub fn span(name: &'static str, trace_id: u64) -> TraceGuard {
    if !enabled() {
        return TraceGuard { active: None };
    }
    emit(name, trace_id, Phase::Begin);
    TraceGuard {
        active: Some((name, trace_id)),
    }
}

/// Scope guard returned by [`span`]; emits the end event on drop.
#[derive(Debug)]
pub struct TraceGuard {
    active: Option<(&'static str, u64)>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some((name, trace_id)) = self.active.take() {
            emit(name, trace_id, Phase::End);
        }
    }
}

/// Number of events currently buffered across all stripes.
pub fn len() -> usize {
    (0..N_STRIPES).map(|i| lock(i).buf.len()).sum()
}

/// Total events overwritten (evicted) because a stripe was full.
pub fn dropped() -> u64 {
    (0..N_STRIPES).map(|i| lock(i).dropped).sum()
}

/// A point-in-time copy of every buffered event, sorted by timestamp
/// (ties broken by thread id, then name, then phase so the output is
/// deterministic for a fixed set of events).
pub fn events() -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(len());
    for i in 0..N_STRIPES {
        let stripe = lock(i);
        out.extend(stripe.ordered().copied());
    }
    out.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then_with(|| a.tid.cmp(&b.tid))
            .then_with(|| a.name.cmp(b.name))
            .then_with(|| matches!(a.phase, Phase::End).cmp(&matches!(b.phase, Phase::End)))
    });
    out
}

/// Renders the ring as one Chrome trace-event JSON document
/// (`chrome://tracing` / Perfetto "JSON" format).
///
/// Every begin/end pair becomes an async event pair (`"ph": "b"` /
/// `"ph": "e"`) in category `"lookhd"`, keyed by the trace id — async
/// events pair across threads, which request stages do (queue wait
/// begins on a reader thread and ends on a worker). Field order is
/// fixed; timestamps are microseconds with nanosecond decimals.
pub fn to_chrome_json() -> String {
    render_chrome_json(&events())
}

/// Renders an explicit event list (see [`to_chrome_json`]).
pub fn render_chrome_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + 96 * events.len());
    out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.phase {
            Phase::Begin => "b",
            Phase::End => "e",
        };
        // Trace-event `ts` is in microseconds; keep nanosecond precision
        // with three fixed decimals.
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"cat\": \"lookhd\", \"ph\": \"{ph}\", \
             \"id\": \"0x{:x}\", \"pid\": 1, \"tid\": {}, \"ts\": {}.{:03}}}",
            e.name,
            e.trace_id,
            e.tid,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace ring is process-global; tests that touch it serialize
    /// here (separate from the registry's own test lock — no test uses
    /// both).
    static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_trace<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(true);
        let out = f();
        set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
        out
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_capacity(DEFAULT_CAPACITY);
        assert!(!enabled());
        emit("never", 1, Phase::Begin);
        pair("never", 1, 0, 10);
        let _span = span("never", 1);
        drop(_span);
        assert_eq!(len(), 0);
    }

    #[test]
    fn events_pair_and_sort_deterministically() {
        with_trace(|| {
            pair("decode", 7, 100, 200);
            pair("predict", 7, 250, 300);
            emit_at("queue_wait", 8, Phase::Begin, 150);
            emit_at("queue_wait", 8, Phase::End, 260);
            let all = events();
            assert_eq!(all.len(), 6);
            let ts: Vec<u64> = all.iter().map(|e| e.ts_ns).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            assert_eq!(ts, sorted);
            assert_eq!(all[0].name, "decode");
            assert_eq!(all[0].phase, Phase::Begin);
            assert_eq!(all[0].trace_id, 7);
        });
    }

    #[test]
    fn overflow_evicts_oldest_without_blocking() {
        with_trace(|| {
            // Single thread → a single stripe with this capacity.
            set_capacity(0); // clamps to MIN_STRIPE_CAPACITY per stripe
            let cap = MIN_STRIPE_CAPACITY;
            for i in 0..(cap as u64 + 10) {
                emit_at("e", i, Phase::Begin, i);
            }
            assert_eq!(len(), cap, "ring must stay bounded");
            assert_eq!(dropped(), 10);
            let all = events();
            // The 10 oldest events (ts 0..9) were overwritten.
            assert_eq!(all.first().map(|e| e.ts_ns), Some(10));
            assert_eq!(all.last().map(|e| e.ts_ns), Some(cap as u64 + 9));
        });
    }

    #[test]
    fn span_guard_emits_begin_and_end() {
        with_trace(|| {
            {
                let _g = span("stage", 42);
            }
            let all = events();
            assert_eq!(all.len(), 2);
            assert_eq!(all[0].phase, Phase::Begin);
            assert_eq!(all[1].phase, Phase::End);
            assert!(all[0].ts_ns <= all[1].ts_ns);
            assert_eq!(all[0].tid, all[1].tid);
        });
    }

    #[test]
    fn chrome_json_is_deterministic_and_balanced() {
        let events = vec![
            TraceEvent {
                name: "decode",
                trace_id: 0x2a,
                tid: 3,
                ts_ns: 1_234_567,
                phase: Phase::Begin,
            },
            TraceEvent {
                name: "decode",
                trace_id: 0x2a,
                tid: 3,
                ts_ns: 1_236_067,
                phase: Phase::End,
            },
        ];
        let json = render_chrome_json(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"b\""));
        assert!(json.contains("\"ph\": \"e\""));
        assert!(json.contains("\"id\": \"0x2a\""));
        assert!(json.contains("\"ts\": 1234.567"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json, render_chrome_json(&events), "deterministic");
    }

    #[test]
    fn concurrent_emitters_never_block_or_lose_structure() {
        with_trace(|| {
            set_capacity(N_STRIPES * MIN_STRIPE_CAPACITY);
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    scope.spawn(move || {
                        for i in 0..500u64 {
                            emit_at("spin", t * 1000 + i, Phase::Begin, i);
                        }
                    });
                }
            });
            // Bounded regardless of how much was written.
            assert!(len() <= N_STRIPES * MIN_STRIPE_CAPACITY);
            assert!(dropped() > 0);
        });
    }
}
