//! The multi-layer perceptron: configuration, SGD training, inference.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use hdc::{Classifier, FitClassifier, HdcError, Result};
use lookhd_engine::{Engine, EngineConfig, EngineStats};

use crate::layer::{softmax, softmax_ce_grad, Dense};

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths (the paper's FPGA comparison uses one hidden
    /// layer; 512 is a typical size for these feature widths).
    pub hidden: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed (init + shuffling).
    pub seed: u64,
    /// Execution engine for batch inference. SGD training is inherently
    /// sequential (each step depends on the previous weights) and always
    /// runs serially, so `threads` only affects `predict_batch`.
    pub engine: EngineConfig,
}

impl MlpConfig {
    /// Defaults: one 512-unit hidden layer, lr 0.01, 20 epochs.
    pub fn new() -> Self {
        Self {
            hidden: vec![512],
            learning_rate: 0.01,
            epochs: 20,
            seed: 0x41_1F,
            engine: EngineConfig::new(),
        }
    }

    /// Sets the hidden-layer widths.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution-engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the engine thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A trained multi-layer perceptron classifier.
///
/// # Examples
///
/// ```
/// use hdc::{Classifier, FitClassifier};
/// use lookhd_mlp::{Mlp, MlpConfig};
///
/// // XOR-ish toy problem.
/// let xs = vec![
///     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
/// ];
/// let ys = vec![0, 1, 1, 0];
/// let config = MlpConfig::new()
///     .with_hidden(vec![16])
///     .with_epochs(500)
///     .with_learning_rate(0.1);
/// let mlp = Mlp::fit(&config, &xs, &ys)?;
/// assert_eq!(mlp.predict(&[1.0, 0.0])?, 1);
/// assert_eq!(mlp.predict(&[1.0, 1.0])?, 0);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    engine: Engine,
}

impl Mlp {
    fn fit_impl(config: &MlpConfig, features: &[Vec<f64>], labels: &[usize]) -> Result<Self> {
        if features.is_empty() {
            return Err(HdcError::invalid_dataset("cannot train on zero samples"));
        }
        if features.len() != labels.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} feature rows but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let n_in = features[0].len();
        if features.iter().any(|f| f.len() != n_in) {
            return Err(HdcError::invalid_dataset("ragged feature matrix"));
        }
        if config.learning_rate <= 0.0 || !config.learning_rate.is_finite() {
            return Err(HdcError::invalid_config(
                "learning_rate",
                "must be positive and finite",
            ));
        }
        if config.hidden.contains(&0) {
            return Err(HdcError::invalid_config(
                "hidden",
                "hidden layers need at least one unit",
            ));
        }
        let n_out = labels.iter().max().map_or(1, |m| m + 1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::new();
        let mut width = n_in;
        for &h in &config.hidden {
            layers.push(Dense::new(width, h, true, &mut rng));
            width = h;
        }
        layers.push(Dense::new(width, n_out, false, &mut rng));
        let mut mlp = Self {
            layers,
            engine: Engine::new(config.engine),
        };
        let mut order: Vec<usize> = (0..features.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                mlp.train_step(&features[i], labels[i], config.learning_rate);
            }
        }
        Ok(mlp)
    }

    fn train_step(&mut self, x: &[f64], y: usize, lr: f64) {
        // Forward, keeping every activation.
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        for layer in &self.layers {
            let out = layer.forward(acts.last().expect("non-empty"));
            acts.push(out);
        }
        // Backward.
        let logits = acts.last().expect("non-empty");
        let mut grad = softmax_ce_grad(logits, y);
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[l], &acts[l + 1], &grad, lr);
        }
    }

    /// Class probabilities for one input.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on an input-width mismatch.
    pub fn probabilities(&self, x: &[f64]) -> Result<Vec<f64>> {
        let expected = self.layers[0].n_in();
        if x.len() != expected {
            return Err(HdcError::DimensionMismatch {
                expected,
                actual: x.len(),
            });
        }
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        Ok(softmax(&h))
    }

    /// Predicts a batch, sharded across the engine's threads, returning
    /// the engine statistics alongside the predictions. Results are
    /// identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error.
    pub fn predict_batch_stats(&self, features: &[Vec<f64>]) -> Result<(Vec<usize>, EngineStats)> {
        let (preds, stats) = self.engine.map_reduce(
            features.len(),
            |range| {
                features[range]
                    .iter()
                    .map(|f| self.predict(f))
                    .collect::<Result<Vec<usize>>>()
            },
            |shards| {
                let mut out = Vec::with_capacity(features.len());
                for shard in shards {
                    out.extend(shard?);
                }
                Ok::<Vec<usize>, HdcError>(out)
            },
        );
        Ok((preds?, stats))
    }

    /// The execution engine batch inference runs on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Total trainable parameters.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Dense::n_params).sum()
    }

    /// The layer widths, input first: `[n_in, hidden…, n_out]`.
    pub fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.layers.iter().map(Dense::n_in).collect();
        w.push(self.layers.last().expect("at least one layer").n_out());
        w
    }
}

impl Classifier for Mlp {
    fn num_classes(&self) -> usize {
        self.layers.last().expect("at least one layer").n_out()
    }

    fn predict(&self, features: &[f64]) -> Result<usize> {
        let p = self.probabilities(features)?;
        let mut best = 0;
        for (i, &v) in p.iter().enumerate() {
            if v > p[best] {
                best = i;
            }
        }
        Ok(best)
    }

    fn predict_batch(&self, features: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self.predict_batch_stats(features)?.0)
    }

    fn class_scores(&self, features: &[f64]) -> Result<Option<Vec<f64>>> {
        self.probabilities(features).map(Some)
    }
}

impl FitClassifier for Mlp {
    type Config = MlpConfig;

    /// Trains an MLP with per-sample SGD.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for an empty, ragged, or
    /// mismatched dataset and [`HdcError::InvalidConfig`] for invalid
    /// hyperparameters.
    fn fit(config: &MlpConfig, features: &[Vec<f64>], labels: &[usize]) -> Result<Self> {
        Self::fit_impl(config, features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(n: usize, k: usize, per_class: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..per_class {
                xs.push(p.iter().map(|&v| v + rng.gen_range(-0.05..0.05)).collect());
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (xs, ys) = blobs(10, 3, 30, 1);
        let config = MlpConfig::new().with_hidden(vec![32]).with_epochs(30);
        let mlp = Mlp::fit(&config, &xs, &ys).unwrap();
        assert!(mlp.evaluate(&xs, &ys).unwrap() > 0.95);
    }

    #[test]
    fn learns_xor_nonlinearity() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0];
        let config = MlpConfig::new()
            .with_hidden(vec![16])
            .with_epochs(800)
            .with_learning_rate(0.1)
            .with_seed(3);
        let mlp = Mlp::fit(&config, &xs, &ys).unwrap();
        assert_eq!(mlp.evaluate(&xs, &ys).unwrap(), 1.0, "XOR not learned");
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = blobs(6, 2, 10, 2);
        let config = MlpConfig::new()
            .with_hidden(vec![8])
            .with_epochs(5)
            .with_seed(7);
        let a = Mlp::fit(&config, &xs, &ys).unwrap();
        let b = Mlp::fit(&config, &xs, &ys).unwrap();
        assert_eq!(a.predict_batch(&xs).unwrap(), b.predict_batch(&xs).unwrap());
    }

    #[test]
    fn threaded_predict_batch_matches_serial() {
        let (xs, ys) = blobs(8, 3, 15, 6);
        let serial = Mlp::fit(
            &MlpConfig::new().with_hidden(vec![16]).with_epochs(5),
            &xs,
            &ys,
        )
        .unwrap();
        let serial_preds = serial.predict_batch(&xs).unwrap();
        for threads in [2usize, 3, 8] {
            let config = MlpConfig::new()
                .with_hidden(vec![16])
                .with_epochs(5)
                .with_engine(EngineConfig::new().with_threads(threads).with_shard_size(7));
            let mlp = Mlp::fit(&config, &xs, &ys).unwrap();
            assert_eq!(
                mlp.predict_batch(&xs).unwrap(),
                serial_preds,
                "{threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let (xs, ys) = blobs(4, 3, 5, 4);
        let mlp = Mlp::fit(
            &MlpConfig::new().with_hidden(vec![8]).with_epochs(2),
            &xs,
            &ys,
        )
        .unwrap();
        let p = mlp.probabilities(&xs[0]).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
        assert_eq!(mlp.num_classes(), 3);
    }

    #[test]
    fn widths_and_params_reflect_architecture() {
        let (xs, ys) = blobs(10, 4, 5, 5);
        let mlp = Mlp::fit(
            &MlpConfig::new().with_hidden(vec![32, 16]).with_epochs(1),
            &xs,
            &ys,
        )
        .unwrap();
        assert_eq!(mlp.widths(), vec![10, 32, 16, 4]);
        assert_eq!(mlp.n_params(), 10 * 32 + 32 + 32 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn rejects_bad_data_and_config() {
        assert!(matches!(
            Mlp::fit(&MlpConfig::new(), &[], &[]),
            Err(HdcError::InvalidDataset { .. })
        ));
        let xs = vec![vec![0.0, 1.0], vec![1.0]];
        assert!(Mlp::fit(&MlpConfig::new(), &xs, &[0, 1]).is_err());
        let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(Mlp::fit(&MlpConfig::new(), &xs, &[0]).is_err());
        assert!(Mlp::fit(&MlpConfig::new().with_learning_rate(0.0), &xs, &[0, 1]).is_err());
        assert!(Mlp::fit(&MlpConfig::new().with_hidden(vec![8, 0]), &xs, &[0, 1]).is_err());
    }

    #[test]
    fn predict_rejects_wrong_arity() {
        let (xs, ys) = blobs(6, 2, 5, 8);
        let mlp = Mlp::fit(
            &MlpConfig::new().with_hidden(vec![8]).with_epochs(1),
            &xs,
            &ys,
        )
        .unwrap();
        assert!(matches!(
            mlp.predict(&[0.0; 3]),
            Err(HdcError::DimensionMismatch {
                expected: 6,
                actual: 3
            })
        ));
    }

    #[test]
    fn config_builder_round_trips() {
        let c = MlpConfig::new()
            .with_hidden(vec![64])
            .with_learning_rate(0.5)
            .with_epochs(3)
            .with_seed(9)
            .with_engine(EngineConfig::new().with_shard_size(32))
            .with_threads(2);
        assert_eq!(c.hidden, vec![64]);
        assert_eq!(c.learning_rate, 0.5);
        assert_eq!(c.epochs, 3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.engine.threads, 2);
        assert_eq!(c.engine.shard_size, 32);
        assert_eq!(MlpConfig::default(), MlpConfig::new());
    }
}
