//! The multi-layer perceptron: configuration, SGD training, inference.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::layer::{softmax, softmax_ce_grad, Dense};

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths (the paper's FPGA comparison uses one hidden
    /// layer; 512 is a typical size for these feature widths).
    pub hidden: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed (init + shuffling).
    pub seed: u64,
}

impl MlpConfig {
    /// Defaults: one 512-unit hidden layer, lr 0.01, 20 epochs.
    pub fn new() -> Self {
        Self {
            hidden: vec![512],
            learning_rate: 0.01,
            epochs: 20,
            seed: 0x41_1F,
        }
    }

    /// Sets the hidden-layer widths.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A trained multi-layer perceptron classifier.
///
/// # Examples
///
/// ```
/// use lookhd_mlp::{Mlp, MlpConfig};
///
/// // XOR-ish toy problem.
/// let xs = vec![
///     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
/// ];
/// let ys = vec![0, 1, 1, 0];
/// let config = MlpConfig::new()
///     .with_hidden(vec![16])
///     .with_epochs(500)
///     .with_learning_rate(0.1);
/// let mlp = Mlp::fit(&config, &xs, &ys);
/// assert_eq!(mlp.predict(&[1.0, 0.0]), 1);
/// assert_eq!(mlp.predict(&[1.0, 1.0]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Trains an MLP with per-sample SGD.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, ragged, or labels/features lengths
    /// differ.
    pub fn fit(config: &MlpConfig, features: &[Vec<f64>], labels: &[usize]) -> Self {
        assert!(!features.is_empty(), "cannot train on zero samples");
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        let n_in = features[0].len();
        assert!(
            features.iter().all(|f| f.len() == n_in),
            "ragged feature matrix"
        );
        let n_out = labels.iter().max().map_or(1, |m| m + 1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::new();
        let mut width = n_in;
        for &h in &config.hidden {
            layers.push(Dense::new(width, h, true, &mut rng));
            width = h;
        }
        layers.push(Dense::new(width, n_out, false, &mut rng));
        let mut mlp = Self { layers };
        let mut order: Vec<usize> = (0..features.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                mlp.train_step(&features[i], labels[i], config.learning_rate);
            }
        }
        mlp
    }

    fn train_step(&mut self, x: &[f64], y: usize, lr: f64) {
        // Forward, keeping every activation.
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        for layer in &self.layers {
            let out = layer.forward(acts.last().expect("non-empty"));
            acts.push(out);
        }
        // Backward.
        let logits = acts.last().expect("non-empty");
        let mut grad = softmax_ce_grad(logits, y);
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[l], &acts[l + 1], &grad, lr);
        }
    }

    /// Class probabilities for one input.
    ///
    /// # Panics
    ///
    /// Panics on an input-width mismatch.
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        softmax(&h)
    }

    /// Predicted class for one input.
    ///
    /// # Panics
    ///
    /// Panics on an input-width mismatch.
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.probabilities(x);
        let mut best = 0;
        for (i, &v) in p.iter().enumerate() {
            if v > p[best] {
                best = i;
            }
        }
        best
    }

    /// Accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn score(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert!(!features.is_empty(), "cannot score zero samples");
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        let correct = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / features.len() as f64
    }

    /// Total trainable parameters.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Dense::n_params).sum()
    }

    /// The layer widths, input first: `[n_in, hidden…, n_out]`.
    pub fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.layers.iter().map(Dense::n_in).collect();
        w.push(self.layers.last().expect("at least one layer").n_out());
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(n: usize, k: usize, per_class: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..per_class {
                xs.push(p.iter().map(|&v| v + rng.gen_range(-0.05..0.05)).collect());
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (xs, ys) = blobs(10, 3, 30, 1);
        let config = MlpConfig::new().with_hidden(vec![32]).with_epochs(30);
        let mlp = Mlp::fit(&config, &xs, &ys);
        assert!(mlp.score(&xs, &ys) > 0.95);
    }

    #[test]
    fn learns_xor_nonlinearity() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0];
        let config = MlpConfig::new()
            .with_hidden(vec![16])
            .with_epochs(800)
            .with_learning_rate(0.1)
            .with_seed(3);
        let mlp = Mlp::fit(&config, &xs, &ys);
        assert_eq!(mlp.score(&xs, &ys), 1.0, "XOR not learned");
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = blobs(6, 2, 10, 2);
        let config = MlpConfig::new().with_hidden(vec![8]).with_epochs(5).with_seed(7);
        let a = Mlp::fit(&config, &xs, &ys);
        let b = Mlp::fit(&config, &xs, &ys);
        for x in &xs {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let (xs, ys) = blobs(4, 3, 5, 4);
        let mlp = Mlp::fit(&MlpConfig::new().with_hidden(vec![8]).with_epochs(2), &xs, &ys);
        let p = mlp.probabilities(&xs[0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn widths_and_params_reflect_architecture() {
        let (xs, ys) = blobs(10, 4, 5, 5);
        let mlp = Mlp::fit(
            &MlpConfig::new().with_hidden(vec![32, 16]).with_epochs(1),
            &xs,
            &ys,
        );
        assert_eq!(mlp.widths(), vec![10, 32, 16, 4]);
        assert_eq!(mlp.n_params(), 10 * 32 + 32 + 32 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn rejects_empty_training_set() {
        let _ = Mlp::fit(&MlpConfig::new(), &[], &[]);
    }

    #[test]
    fn config_builder_round_trips() {
        let c = MlpConfig::new()
            .with_hidden(vec![64])
            .with_learning_rate(0.5)
            .with_epochs(3)
            .with_seed(9);
        assert_eq!(c.hidden, vec![64]);
        assert_eq!(c.learning_rate, 0.5);
        assert_eq!(c.epochs, 3);
        assert_eq!(c.seed, 9);
        assert_eq!(MlpConfig::default(), MlpConfig::new());
    }
}
