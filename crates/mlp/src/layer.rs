//! Dense (fully connected) layers with ReLU, and their gradients.

use rand::Rng;

/// A fully connected layer `y = W·x + b`, optionally followed by ReLU.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Row-major weights, `out × in`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    n_in: usize,
    n_out: usize,
    relu: bool,
}

impl Dense {
    /// Creates a layer with Xavier-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if `n_in == 0` or `n_out == 0`.
    pub fn new<R: Rng + ?Sized>(n_in: usize, n_out: usize, relu: bool, rng: &mut R) -> Self {
        assert!(n_in > 0 && n_out > 0, "layer dimensions must be positive");
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        let weights = (0..n_in * n_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            weights,
            biases: vec![0.0; n_out],
            n_in,
            n_out,
            relu,
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Whether a ReLU follows the affine map.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// Forward pass: returns the post-activation output.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_in()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_in, "input width mismatch");
        let mut y = self.biases.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            *yo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>();
        }
        if self.relu {
            for v in &mut y {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        y
    }

    /// Backward pass for one sample: given the input `x`, the layer output
    /// `y` (post-activation), and `dl_dy`, applies the SGD update with
    /// learning rate `lr` and returns `dl_dx`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn backward(&mut self, x: &[f64], y: &[f64], dl_dy: &[f64], lr: f64) -> Vec<f64> {
        assert_eq!(x.len(), self.n_in, "input width mismatch");
        assert_eq!(dl_dy.len(), self.n_out, "gradient width mismatch");
        assert_eq!(y.len(), self.n_out, "output width mismatch");
        let mut dl_dx = vec![0.0; self.n_in];
        for o in 0..self.n_out {
            // ReLU gate: no gradient through inactive units.
            let g = if self.relu && y[o] <= 0.0 {
                0.0
            } else {
                dl_dy[o]
            };
            if g == 0.0 {
                continue;
            }
            let row = &mut self.weights[o * self.n_in..(o + 1) * self.n_in];
            for (i, w) in row.iter_mut().enumerate() {
                dl_dx[i] += *w * g;
                *w -= lr * g * x[i];
            }
            self.biases[o] -= lr * g;
        }
        dl_dx
    }

    /// Number of parameters (weights + biases).
    pub fn n_params(&self) -> usize {
        self.n_in * self.n_out + self.n_out
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss gradient w.r.t. logits for a one-hot target:
/// `softmax(logits) − onehot(target)`.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn softmax_ce_grad(logits: &[f64], target: usize) -> Vec<f64> {
    assert!(target < logits.len(), "target class out of range");
    let mut g = softmax(logits);
    g[target] -= 1.0;
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_hand_computation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 1, false, &mut rng);
        // Overwrite with known weights via backward-free poke: rebuild.
        layer.weights = vec![2.0, -1.0];
        layer.biases = vec![0.5];
        assert_eq!(layer.forward(&[3.0, 4.0]), vec![2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(1, 1, true, &mut rng);
        layer.weights = vec![1.0];
        layer.biases = vec![0.0];
        assert_eq!(layer.forward(&[-5.0]), vec![0.0]);
        assert_eq!(layer.forward(&[5.0]), vec![5.0]);
        assert!(layer.has_relu());
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 999.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0] && p[0] > p[2]);
    }

    #[test]
    fn ce_grad_points_away_from_target() {
        let g = softmax_ce_grad(&[0.0, 0.0], 0);
        assert!(g[0] < 0.0 && g[1] > 0.0);
    }

    /// Numerical gradient check on the weight update direction: after one
    /// SGD step the loss must decrease.
    #[test]
    fn backward_decreases_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(3, 2, false, &mut rng);
        let x = [0.3, -0.7, 0.9];
        let target = 1usize;
        let loss = |layer: &Dense| -> f64 {
            let p = softmax(&layer.forward(&x));
            -p[target].ln()
        };
        let before = loss(&layer);
        for _ in 0..20 {
            let y = layer.forward(&x);
            let g = softmax_ce_grad(&y, target);
            layer.backward(&x, &y, &g, 0.1);
        }
        let after = loss(&layer);
        assert!(after < before, "loss should drop: {before} -> {after}");
    }

    /// Finite-difference check of dl_dx.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Dense::new(3, 2, false, &mut rng);
        let x = [0.2, 0.5, -0.4];
        let target = 0usize;
        let loss_at = |x: &[f64]| -> f64 {
            let p = softmax(&layer.forward(x));
            -p[target].ln()
        };
        let y = layer.forward(&x);
        let g = softmax_ce_grad(&y, target);
        let mut probe = layer.clone();
        let dl_dx = probe.backward(&x, &y, &g, 0.0); // lr=0: read-only gradient
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let num = (loss_at(&xp) - loss_at(&x)) / eps;
            assert!(
                (num - dl_dx[i]).abs() < 1e-4,
                "grad mismatch at {i}: analytic {} vs numeric {num}",
                dl_dx[i]
            );
        }
    }

    #[test]
    fn n_params_counts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Dense::new(10, 4, true, &mut rng);
        assert_eq!(layer.n_params(), 44);
        assert_eq!(layer.n_in(), 10);
        assert_eq!(layer.n_out(), 4);
    }
}
