//! # lookhd-mlp — the Table IV MLP comparator
//!
//! The paper compares LookHD against an MLP mapped onto the same FPGA
//! (DNNWeaver for inference, FPDeep for training). This crate provides a
//! from-scratch multi-layer perceptron — dense layers, ReLU, softmax
//! cross-entropy, per-sample SGD — for accuracy sanity, plus
//! [`ops::MlpShape`] MAC/byte descriptors that the `lookhd-hwsim` platform
//! models cost on the same device budget.
//!
//! ## Example
//!
//! ```
//! use hdc::{Classifier, FitClassifier};
//! use lookhd_mlp::{Mlp, MlpConfig};
//!
//! let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
//! let ys = vec![1, 0];
//! let config = MlpConfig::new().with_hidden(vec![8]).with_epochs(200);
//! let mlp = Mlp::fit(&config, &xs, &ys)?;
//! assert_eq!(mlp.predict(&[0.0, 1.0])?, 1);
//! # Ok::<(), hdc::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod network;
pub mod ops;

pub use network::{Mlp, MlpConfig};
pub use ops::MlpShape;
