//! Operation-count descriptors for the Table IV FPGA comparison.
//!
//! The paper maps MLP inference through DNNWeaver and MLP training through
//! FPDeep; both are MAC-throughput designs. These helpers report the MAC
//! and memory volumes of an MLP so the `lookhd-hwsim` platform models can
//! cost it on the same device budget as LookHD.

/// Static shape of an MLP workload: layer widths input-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpShape {
    widths: Vec<usize>,
}

impl MlpShape {
    /// Builds a shape from layer widths `[n_in, hidden…, n_out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(widths: Vec<usize>) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        assert!(
            widths.iter().all(|&w| w > 0),
            "layer widths must be positive"
        );
        Self { widths }
    }

    /// The layer widths, input first.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Multiply-accumulates for one forward pass.
    pub fn inference_macs(&self) -> u64 {
        self.widths.windows(2).map(|w| (w[0] * w[1]) as u64).sum()
    }

    /// Multiply-accumulates for one SGD training step. Backprop costs one
    /// forward pass plus two MAC passes (input gradients and weight
    /// updates): ~3× inference (the FPDeep accounting).
    pub fn training_step_macs(&self) -> u64 {
        3 * self.inference_macs()
    }

    /// Parameter count (weights + biases).
    pub fn n_params(&self) -> u64 {
        self.widths
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as u64)
            .sum()
    }

    /// Model bytes at 32-bit weights (the Table IV model-size comparison).
    pub fn model_bytes(&self) -> u64 {
        self.n_params() * 4
    }

    /// Weight bytes that must stream from memory per inference (each
    /// weight read once).
    pub fn inference_weight_bytes(&self) -> u64 {
        self.inference_macs() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_match_hand_computation() {
        let s = MlpShape::new(vec![617, 512, 26]);
        assert_eq!(s.inference_macs(), 617 * 512 + 512 * 26);
        assert_eq!(s.training_step_macs(), 3 * s.inference_macs());
    }

    #[test]
    fn params_and_bytes() {
        let s = MlpShape::new(vec![10, 4, 2]);
        assert_eq!(s.n_params(), 10 * 4 + 4 + 4 * 2 + 2);
        assert_eq!(s.model_bytes(), s.n_params() * 4);
        assert_eq!(s.inference_weight_bytes(), (10 * 4 + 4 * 2) * 4);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_width() {
        let _ = MlpShape::new(vec![10]);
    }

    #[test]
    fn widths_accessor() {
        let s = MlpShape::new(vec![3, 2]);
        assert_eq!(s.widths(), &[3, 2]);
    }
}
