//! Deterministic sharded execution engine for LookHD training and batch
//! inference.
//!
//! The engine partitions an index space `0..n` into fixed-size shards and
//! maps a caller-supplied function over the shards on a pool of scoped
//! threads ([`std::thread::scope`] — no external dependencies). Shard
//! results are always returned **in shard order**, whatever the thread
//! count, so any merge that folds them left-to-right is bit-identical to a
//! serial run. This is the determinism contract every parallel path in the
//! workspace relies on:
//!
//! > For a fixed input and [`EngineConfig::shard_size`], the outputs of
//! > [`Engine::run`] and [`Engine::map_reduce`] are identical for every
//! > `threads` value, including 1.
//!
//! With `threads == 1` (the default) shards run inline on the calling
//! thread with no pool at all, so serial callers pay nothing. Worker
//! threads claim shards dynamically from an atomic counter; ordering is
//! restored afterwards by slotting each result at its shard index.
//!
//! Every run also produces [`EngineStats`]: per-shard wall-clock timings,
//! merge time, and overall throughput, which the CLI and benchmark
//! binaries surface to users. When the [`obs`] registry is enabled, the
//! same timings are folded into it as `engine/run`, `engine/shard`, and
//! `engine/merge` spans, so sharded stages show up in `--metrics` output
//! alongside the algorithmic spans recorded by the callers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How a sharded run should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker thread count. `0` means "use the host's available
    /// parallelism"; `1` (the default) runs everything inline on the
    /// calling thread.
    pub threads: usize,
    /// Number of items per shard. Larger shards amortise dispatch
    /// overhead; smaller shards balance load better.
    pub shard_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            shard_size: 1024,
        }
    }
}

impl EngineConfig {
    /// Returns the default (serial) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shard size (clamped up to 1 — empty shards are
    /// meaningless).
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// The thread count a run will actually use: resolves `0` to the
    /// host's available parallelism and never exceeds the shard count.
    pub fn effective_threads(&self, n_shards: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.max(1).min(n_shards.max(1))
    }
}

/// Wall-clock timing of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTiming {
    /// Shard index (position in `0..n_shards`).
    pub shard: usize,
    /// Number of items the shard covered.
    pub items: usize,
    /// Time spent executing the shard's map function.
    pub elapsed: Duration,
}

/// Timing record of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Threads the run actually used.
    pub threads: usize,
    /// Total items processed.
    pub items: usize,
    /// Per-shard timings, in shard order.
    pub shards: Vec<ShardTiming>,
    /// Time spent in the caller's merge/reduce step (zero for plain
    /// [`Engine::run`]).
    pub merge_time: Duration,
    /// End-to-end wall-clock time of the run, merge included.
    pub wall_time: Duration,
}

impl EngineStats {
    /// Overall throughput in items per second (0 if the run was too fast
    /// to measure).
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.items as f64 / secs
        } else {
            0.0
        }
    }

    /// The slowest shard's elapsed time, if any shards ran.
    pub fn max_shard_time(&self) -> Option<Duration> {
        self.shards.iter().map(|s| s.elapsed).max()
    }

    /// Sum of all shard times (CPU time spent mapping, ignoring overlap).
    pub fn total_shard_time(&self) -> Duration {
        self.shards.iter().map(|s| s.elapsed).sum()
    }

    /// Folds this run's timings into the global [`obs`] registry (one
    /// `engine/shard` observation per shard, one `engine/run` for the
    /// whole run, plus an `engine.items` counter). No-op while the
    /// registry is disabled.
    pub fn fold_into_obs(&self) {
        if !obs::enabled() {
            return;
        }
        for shard in &self.shards {
            obs::record("engine/shard", shard.elapsed);
        }
        obs::record("engine/run", self.wall_time);
        obs::counter("engine.items", self.items as u64);
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} items / {} shard(s) on {} thread(s): {:?} wall, {:?} merge, {:.0} items/s",
            self.items,
            self.shards.len(),
            self.threads,
            self.wall_time,
            self.merge_time,
            self.items_per_sec()
        )
    }
}

/// Splits `0..n_items` into consecutive shards of at most `shard_size`
/// items. The final shard holds the remainder when `n_items` is not a
/// multiple of `shard_size`.
pub fn shard_ranges(n_items: usize, shard_size: usize) -> Vec<Range<usize>> {
    let shard_size = shard_size.max(1);
    (0..n_items)
        .step_by(shard_size)
        .map(|start| start..(start + shard_size).min(n_items))
        .collect()
}

/// A sharded executor with a fixed [`EngineConfig`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// A serial engine (one thread, default shard size).
    pub fn serial() -> Self {
        Self::default()
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Maps `f` over the shards of `0..n_items` and returns the results
    /// **in shard order**, plus run statistics.
    ///
    /// `f` receives the item range of its shard. Results are ordered by
    /// shard index regardless of which thread produced them, so callers
    /// that fold the vector front-to-back observe exactly the serial
    /// order.
    pub fn run<R, F>(&self, n_items: usize, f: F) -> (Vec<R>, EngineStats)
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let started = Instant::now();
        let ranges = shard_ranges(n_items, self.config.shard_size);
        let threads = self.config.effective_threads(ranges.len());

        let (results, timings) = if threads <= 1 {
            run_inline(&ranges, &f)
        } else {
            run_scoped(&ranges, threads, &f)
        };

        let stats = EngineStats {
            threads,
            items: n_items,
            shards: timings,
            merge_time: Duration::ZERO,
            wall_time: started.elapsed(),
        };
        stats.fold_into_obs();
        (results, stats)
    }

    /// Maps `f` over shards, then folds the shard results **in shard
    /// order** with `reduce`. The fold is timed as the merge step in the
    /// returned [`EngineStats`].
    pub fn map_reduce<R, M, F, G>(&self, n_items: usize, f: F, reduce: G) -> (M, EngineStats)
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
        G: FnOnce(Vec<R>) -> M,
    {
        let started = Instant::now();
        let (results, mut stats) = self.run(n_items, f);
        let merge_started = Instant::now();
        let merged = reduce(results);
        stats.merge_time = merge_started.elapsed();
        stats.wall_time = started.elapsed();
        if obs::enabled() {
            obs::record("engine/merge", stats.merge_time);
        }
        (merged, stats)
    }
}

/// Serial execution on the calling thread: no pool, no channels.
fn run_inline<R, F>(ranges: &[Range<usize>], f: &F) -> (Vec<R>, Vec<ShardTiming>)
where
    F: Fn(Range<usize>) -> R,
{
    let mut results = Vec::with_capacity(ranges.len());
    let mut timings = Vec::with_capacity(ranges.len());
    for (shard, range) in ranges.iter().enumerate() {
        let items = range.len();
        let started = Instant::now();
        results.push(f(range.clone()));
        timings.push(ShardTiming {
            shard,
            items,
            elapsed: started.elapsed(),
        });
    }
    (results, timings)
}

/// Parallel execution: scoped workers claim shard indices from an atomic
/// counter, and results are re-ordered by shard index afterwards.
fn run_scoped<R, F>(ranges: &[Range<usize>], threads: usize, f: &F) -> (Vec<R>, Vec<ShardTiming>)
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = ranges.get(shard) else {
                            break;
                        };
                        let started = Instant::now();
                        let result = f(range.clone());
                        local.push((shard, result, started.elapsed()));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Restore shard order so merges are deterministic.
    tagged.sort_by_key(|(shard, _, _)| *shard);
    debug_assert_eq!(tagged.len(), ranges.len());
    let mut results = Vec::with_capacity(tagged.len());
    let mut timings = Vec::with_capacity(tagged.len());
    for (shard, result, elapsed) in tagged {
        results.push(result);
        timings.push(ShardTiming {
            shard,
            items: ranges[shard].len(),
            elapsed,
        });
    }
    (results, timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_remainder() {
        let ranges = shard_ranges(10, 4);
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(shard_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(shard_ranges(3, 100), vec![0..3]);
    }

    #[test]
    fn shard_size_zero_is_clamped() {
        assert_eq!(shard_ranges(3, 0), vec![0..1, 1..2, 2..3]);
        assert_eq!(EngineConfig::new().with_shard_size(0).shard_size, 1);
    }

    #[test]
    fn results_arrive_in_shard_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig::new().with_threads(threads).with_shard_size(3));
            let (results, stats) = engine.run(20, |range| range.collect::<Vec<usize>>());
            let flat: Vec<usize> = results.into_iter().flatten().collect();
            assert_eq!(flat, (0..20).collect::<Vec<_>>(), "threads={threads}");
            assert_eq!(stats.items, 20);
            assert_eq!(stats.shards.len(), 7);
            assert_eq!(
                stats.shards.iter().map(|s| s.shard).collect::<Vec<_>>(),
                (0..7).collect::<Vec<_>>()
            );
            assert_eq!(stats.shards.iter().map(|s| s.items).sum::<usize>(), 20);
        }
    }

    #[test]
    fn map_reduce_is_deterministic_across_thread_counts() {
        let reference: i64 = (0..1000).map(|i| (i as i64) * (i as i64)).sum();
        for threads in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig::new().with_threads(threads).with_shard_size(7));
            let (sum, stats) = engine.map_reduce(
                1000,
                |range| range.map(|i| (i as i64) * (i as i64)).sum::<i64>(),
                |partials| partials.into_iter().sum::<i64>(),
            );
            assert_eq!(sum, reference, "threads={threads}");
            assert!(stats.wall_time >= stats.merge_time);
        }
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        let auto = EngineConfig::new().with_threads(0);
        assert!(auto.effective_threads(100) >= 1);
        let many = EngineConfig::new().with_threads(16);
        assert_eq!(many.effective_threads(4), 4);
        assert_eq!(many.effective_threads(0), 1);
    }

    #[test]
    fn empty_input_produces_no_shards() {
        let engine = Engine::new(EngineConfig::new().with_threads(4));
        let (results, stats) = engine.run(0, |range| range.len());
        assert!(results.is_empty());
        assert_eq!(stats.items, 0);
        assert_eq!(stats.items_per_sec(), 0.0);
        assert!(stats.max_shard_time().is_none());
    }

    #[test]
    fn runs_fold_timings_into_obs_when_enabled() {
        // The fold targets the process-global registry, and sibling tests
        // in this binary may run engines concurrently while it is enabled,
        // so assert lower bounds rather than exact counts.
        obs::reset();
        obs::set_enabled(true);
        let engine = Engine::new(EngineConfig::new().with_threads(2).with_shard_size(5));
        let (_, stats) = engine.map_reduce(
            20,
            |range| range.len(),
            |partials| partials.into_iter().sum::<usize>(),
        );
        obs::set_enabled(false);
        let snap = obs::snapshot();
        obs::reset();
        let shard = snap
            .spans
            .iter()
            .find(|s| s.path == "engine/shard")
            .expect("engine/shard span recorded");
        assert!(shard.count as usize >= stats.shards.len());
        assert!(snap.spans.iter().any(|s| s.path == "engine/run"));
        assert!(snap.spans.iter().any(|s| s.path == "engine/merge"));
        assert!(snap.counter("engine.items") >= 20);
    }

    #[test]
    fn stats_display_mentions_throughput() {
        let engine = Engine::serial();
        let (_, stats) = engine.run(10, |r| r.len());
        let text = format!("{stats}");
        assert!(text.contains("items/s"), "{text}");
    }
}
