//! # lookhd-paper — a Rust reproduction of LookHD (HPCA 2021)
//!
//! This facade crate re-exports the whole reproduction of *Revisiting
//! HyperDimensional Learning for FPGA and Low-Power Architectures*:
//!
//! * [`hdc`] — the baseline HDC substrate (hypervectors, quantizers,
//!   permutation encoding, class models, training, metrics);
//! * [`lookhd`] — the paper's contribution (lookup encoding, counter
//!   training, model compression, compressed retraining);
//! * [`datasets`] — synthetic stand-ins for the five evaluation
//!   applications;
//! * [`hwsim`] — analytic FPGA / ARM / GPU cost models;
//! * [`mlp`] — the Table IV MLP comparator;
//! * [`rtl`] — fixed-point datapath emulation and width verification;
//! * [`obs`] — std-only timing spans / counters behind the CLI's
//!   `--metrics` flag;
//! * [`serve`] — the batched TCP inference service behind `lookhd serve`
//!   (hardened wire protocol, micro-batching queue, backpressure,
//!   deadlines, graceful shutdown).
//!
//! See `examples/quickstart.rs` for a five-minute tour, DESIGN.md for the
//! system inventory and per-experiment index, and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use lookhd_paper::prelude::*;
//!
//! let xs: Vec<Vec<f64>> = (0..30)
//!     .map(|i| vec![if i % 2 == 0 { 0.2 } else { 0.8 }; 10])
//!     .collect();
//! let ys: Vec<usize> = (0..30).map(|i| i % 2).collect();
//! let clf = LookHdClassifier::fit(
//!     &LookHdConfig::new().with_dim(512).with_q(2),
//!     &xs,
//!     &ys,
//! )?;
//! assert_eq!(clf.predict(&[0.2; 10])?, 0);
//! # Ok::<(), lookhd_paper::hdc::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hdc;
pub use lookhd;

/// The deterministic sharded execution engine behind `--threads`.
pub use lookhd_engine as engine;

/// The std-only observability layer behind `--metrics` (timing spans,
/// counters, latency histograms).
pub use obs;

/// One-stop imports: the classifier traits, the three model families,
/// their configs, and the execution-engine types.
///
/// ```
/// use lookhd_paper::prelude::*;
///
/// let xs = vec![vec![0.1; 4], vec![0.9; 4]];
/// let ys = vec![0, 1];
/// let config = HdcConfig::new().with_dim(256).with_engine(
///     EngineConfig::new().with_threads(2),
/// );
/// let clf = HdcClassifier::fit(&config, &xs, &ys)?;
/// assert_eq!(clf.num_classes(), 2);
/// # Ok::<(), HdcError>(())
/// ```
pub mod prelude {
    pub use hdc::classifier::{HdcClassifier, HdcConfig};
    pub use hdc::{Classifier, FitClassifier, HdcError, Result};
    pub use lookhd::{LookHdClassifier, LookHdConfig};
    pub use lookhd_engine::{Engine, EngineConfig, EngineStats};
    pub use lookhd_mlp::{Mlp, MlpConfig};
}

/// The batched TCP inference service (`lookhd serve` + `loadgen`).
pub use lookhd_serve as serve;

/// Synthetic stand-ins for the paper's five evaluation datasets.
pub use lookhd_datasets as datasets;
/// Analytic FPGA / CPU / GPU hardware cost models.
pub use lookhd_hwsim as hwsim;
/// The Table IV MLP comparator.
pub use lookhd_mlp as mlp;
/// Fixed-point datapath emulation and bit-width verification.
pub use lookhd_rtl as rtl;
